//! Flow-level capacity of a Quartz mesh *after* fiber cuts.
//!
//! The static analysis in [`quartz_core::fault`] tells which direct
//! channels a failure set severs; [`DegradedQuartzFabric`] feeds that
//! into the max-min waterfiller: severed channels carry nothing, their
//! pairs' traffic detours over surviving two-hop (or, in extremis,
//! multi-hop) rack paths, and [`crate::throughput::normalized_throughput`]
//! then quantifies how much aggregate capacity the degraded fabric
//! retains — the flow-level counterpart of the packet-level rerouting in
//! `quartz-netsim`.

use crate::fabric::{Fabric, Host, MeshRouting, QuartzFabric};
use crate::waterfill::Problem;
use quartz_core::fault::FailureModel;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A [`QuartzFabric`] with some of its pairwise channels severed.
///
/// Routing over the wreckage mirrors what a reconverged control plane
/// would install:
///
/// * pairs whose direct channel survives follow the base policy, but
///   detour only over intermediates whose **both** channel legs survive;
/// * pairs whose direct channel is severed spread all traffic over their
///   surviving two-hop detours, or (if every intermediate lost a leg) a
///   single shortest multi-hop rack path;
/// * pairs in different connected components are **unroutable**: their
///   demands are omitted from the allocation problem, and
///   [`crate::throughput::normalized_throughput`] counts the omission
///   against the fabric because the NIC-only ideal reference still
///   includes them.
#[derive(Clone, Debug)]
pub struct DegradedQuartzFabric {
    base: QuartzFabric,
    /// Severed ordered rack pairs (both orders present). Ordered so any
    /// iteration over the wreckage is deterministic.
    dead: BTreeSet<(usize, usize)>,
    /// Dense channel-liveness map, `racks × racks`, indexed
    /// `a * racks + b`: the hot [`DegradedQuartzFabric::alive`] lookup
    /// is one indexed load instead of a `BTreeSet` probe (`problem`
    /// scans every intermediate per cross-rack demand).
    alive_map: Vec<bool>,
    /// Connected component of each rack over surviving channels.
    comp: Vec<usize>,
}

impl DegradedQuartzFabric {
    /// Degrades `base` by severing each (undirected) rack pair in
    /// `severed`.
    ///
    /// # Panics
    /// Panics if a pair names a rack out of range or is a self-pair.
    pub fn new(base: QuartzFabric, severed: &[(usize, usize)]) -> Self {
        let mut dead = BTreeSet::new();
        for &(a, b) in severed {
            assert!(
                a != b && a < base.racks && b < base.racks,
                "bad pair ({a},{b})"
            );
            dead.insert((a, b));
            dead.insert((b, a));
        }
        let mut alive_map = vec![true; base.racks * base.racks];
        for &(a, b) in &dead {
            alive_map[a * base.racks + b] = false;
        }
        // Connected components of the surviving channel graph.
        let mut comp = vec![usize::MAX; base.racks];
        let mut next = 0;
        for start in 0..base.racks {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next;
            let mut queue = VecDeque::from([start]);
            while let Some(r) = queue.pop_front() {
                for (w, c) in comp.iter_mut().enumerate() {
                    if w != r && *c == usize::MAX && alive_map[r * base.racks + w] {
                        *c = next;
                        queue.push_back(w);
                    }
                }
            }
            next += 1;
        }
        DegradedQuartzFabric {
            base,
            dead,
            alive_map,
            comp,
        }
    }

    /// Degrades `base` by a concrete fiber-failure set `broken`
    /// (`(ring, physical link)` entries, as [`FailureModel::trial`]
    /// takes): every channel the model maps across a broken segment is
    /// severed.
    ///
    /// # Panics
    /// Panics if the model's mesh size differs from the fabric's rack
    /// count.
    pub fn from_broken_links(
        base: QuartzFabric,
        model: &FailureModel,
        broken: &[(usize, usize)],
    ) -> Self {
        assert_eq!(
            model.switches(),
            base.racks,
            "failure model and fabric must agree on mesh size"
        );
        let severed = model.severed_pairs(broken);
        DegradedQuartzFabric::new(base, &severed)
    }

    /// Whether racks `a` and `b` can still reach each other (possibly
    /// multi-hop).
    pub fn connected(&self, a: usize, b: usize) -> bool {
        self.comp[a] == self.comp[b]
    }

    /// Whether the direct channel between `a` and `b` survives.
    #[inline]
    fn alive(&self, a: usize, b: usize) -> bool {
        self.alive_map[a * self.base.racks + b]
    }

    /// The severed (undirected) rack pairs, sorted (the set iterates in
    /// ascending `(a, b)` order already).
    pub fn severed_channels(&self) -> Vec<(usize, usize)> {
        self.dead.iter().copied().filter(|&(a, b)| a < b).collect()
    }

    /// The demands no reconverged routing can serve: endpoints in
    /// different surviving components.
    pub fn unroutable(&self, demands: &[(Host, Host)]) -> Vec<(Host, Host)> {
        demands
            .iter()
            .copied()
            .filter(|&(s, d)| !self.connected(self.base.rack_of(s), self.base.rack_of(d)))
            .collect()
    }

    /// Shortest surviving rack path `from → … → to` (BFS, deterministic
    /// tie-break by rack index). Both endpoints are in the same
    /// component by the caller's check.
    fn rack_path(&self, from: usize, to: usize) -> Vec<usize> {
        let mut prev = vec![usize::MAX; self.base.racks];
        prev[from] = from;
        let mut queue = VecDeque::from([from]);
        while let Some(r) = queue.pop_front() {
            if r == to {
                break;
            }
            for (w, p) in prev.iter_mut().enumerate() {
                if w != r && *p == usize::MAX && self.alive(r, w) {
                    *p = r;
                    queue.push_back(w);
                }
            }
        }
        let mut path = vec![to];
        while *path.last().expect("non-empty") != from {
            path.push(prev[*path.last().expect("non-empty")]);
        }
        path.reverse();
        path
    }
}

impl Fabric for DegradedQuartzFabric {
    fn hosts(&self) -> usize {
        self.base.hosts()
    }

    fn rack_of(&self, h: Host) -> usize {
        self.base.rack_of(h)
    }

    fn problem(&self, demands: &[(Host, Host)]) -> Problem {
        let base = &self.base;
        let mut p = Problem::default();
        let nh = base.hosts();
        // Identical link layout to `QuartzFabric::problem` (dead channels
        // stay allocated at full capacity for O(1) indexing — no path
        // ever references them, so they never constrain anything).
        for _ in 0..2 * nh {
            p.add_link(1.0);
        }
        for _ in 0..base.racks * base.racks {
            p.add_link(base.channel_cap);
        }

        // Cross-rack sharers per ordered pair, for the adaptive policy.
        let mut pair_flows: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        if base.policy == MeshRouting::VlbAdaptive {
            for &(s, d) in demands {
                let (ra, rb) = (base.rack_of(s), base.rack_of(d));
                if ra != rb {
                    *pair_flows.entry((ra, rb)).or_insert(0) += 1;
                }
            }
        }

        for &(s, d) in demands {
            assert!(s < nh && d < nh && s != d, "bad demand ({s},{d})");
            let (ra, rb) = (base.rack_of(s), base.rack_of(d));
            let mut path = vec![(s, 1.0), (nh + d, 1.0)];
            if ra != rb {
                if !self.connected(ra, rb) {
                    // Unroutable: omit the flow entirely (see the type
                    // docs — the throughput normalization penalizes it).
                    continue;
                }
                let survivors: Vec<usize> = (0..base.racks)
                    .filter(|&w| w != ra && w != rb && self.alive(ra, w) && self.alive(w, rb))
                    .collect();
                if self.alive(ra, rb) {
                    // Base policy, restricted to surviving detours.
                    let k = match base.policy {
                        MeshRouting::EcmpDirect => 0.0,
                        MeshRouting::VlbUniform(k) => k,
                        MeshRouting::VlbAdaptive => {
                            let j = pair_flows[&(ra, rb)] as f64;
                            (1.0 - base.channel_cap / j).max(0.0)
                        }
                    };
                    let k = if survivors.is_empty() { 0.0 } else { k };
                    if 1.0 - k > 0.0 {
                        path.push((base.chan(ra, rb), 1.0 - k));
                    }
                    if k > 0.0 {
                        let share = k / survivors.len() as f64;
                        for w in survivors {
                            path.push((base.chan(ra, w), share));
                            path.push((base.chan(w, rb), share));
                        }
                    }
                } else if !survivors.is_empty() {
                    // Direct channel severed: everything detours, spread
                    // over the surviving two-hop intermediates.
                    let share = 1.0 / survivors.len() as f64;
                    for w in survivors {
                        path.push((base.chan(ra, w), share));
                        path.push((base.chan(w, rb), share));
                    }
                } else {
                    // Heavily damaged: single shortest multi-hop detour.
                    for leg in self.rack_path(ra, rb).windows(2) {
                        path.push((base.chan(leg[0], leg[1]), 1.0));
                    }
                }
            }
            p.add_flow(path);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::throughput::normalized_throughput;
    use crate::waterfill::max_min_rates;

    fn fabric(racks: usize, hpr: usize, policy: MeshRouting) -> QuartzFabric {
        QuartzFabric {
            racks,
            hosts_per_rack: hpr,
            channel_cap: 1.0,
            policy,
        }
    }

    #[test]
    fn severed_pair_detours_over_two_hops() {
        // 4 racks × 1 host; cut channel 0↔1. The 0→1 demand spreads over
        // racks 2 and 3 and still reaches full line rate (nothing else
        // competes for those legs).
        let f = DegradedQuartzFabric::new(fabric(4, 1, MeshRouting::EcmpDirect), &[(0, 1)]);
        assert!(f.connected(0, 1));
        assert_eq!(f.severed_channels(), vec![(0, 1)]);
        let r = max_min_rates(&f.problem(&[(0, 1)]));
        assert_eq!(r.len(), 1);
        assert!(r[0] > 0.99, "{r:?}");
    }

    #[test]
    fn partitioned_demands_are_reported_and_omitted() {
        // 3 racks: cutting 0↔1 and 0↔2 isolates rack 0 entirely.
        let f = DegradedQuartzFabric::new(fabric(3, 2, MeshRouting::EcmpDirect), &[(0, 1), (0, 2)]);
        assert!(!f.connected(0, 1));
        let demands = vec![(0, 2), (2, 4), (4, 1)];
        assert_eq!(f.unroutable(&demands), vec![(0, 2), (4, 1)]);
        // Only the routable rack-1↔rack-2 demand enters the problem.
        let r = max_min_rates(&f.problem(&demands));
        assert_eq!(r.len(), 1);
        // And the normalization charges for the two missing flows.
        let t = normalized_throughput(&f, &demands);
        assert!(t.normalized < 0.5, "{t:?}");
    }

    #[test]
    fn multi_hop_fallback_when_every_intermediate_lost_a_leg() {
        // 5 racks; the cuts leave no intermediate with both legs toward
        // the 0↔1 pair (2 and 3 lost their leg to 1, 4 lost its leg to
        // 0), yet the racks stay connected — the BFS fallback must find
        // the 3-hop detour 0 → 2 → 4 → 1 and the flow still gets full
        // rate.
        let f = DegradedQuartzFabric::new(
            fabric(5, 1, MeshRouting::EcmpDirect),
            &[(0, 1), (2, 1), (3, 1), (4, 0)],
        );
        assert!(f.connected(0, 1));
        let r = max_min_rates(&f.problem(&[(0, 1)]));
        assert!(r[0] > 0.99, "{r:?}");
    }

    #[test]
    fn degraded_throughput_sits_between_zero_and_intact() {
        // A permutation on a 8×4 mesh with VLB: severing three channels
        // costs some throughput but nowhere near all of it.
        let intact = fabric(8, 4, MeshRouting::VlbUniform(0.5));
        let d = crate::matrix::random_permutation(32, 11);
        let t0 = normalized_throughput(&intact, &d).normalized;
        let f = DegradedQuartzFabric::new(intact.clone(), &[(0, 1), (2, 5), (3, 7)]);
        let t1 = normalized_throughput(&f, &d).normalized;
        assert!(t1 <= t0 + 1e-9, "degraded {t1} vs intact {t0}");
        assert!(t1 > 0.5 * t0, "the mesh degrades gracefully: {t1} vs {t0}");
    }

    #[test]
    fn from_broken_links_matches_the_failure_model() {
        let model = FailureModel::new(9, 1);
        let broken = [(0usize, 2usize)];
        let severed = model.severed_pairs(&broken);
        assert!(!severed.is_empty());
        let f = DegradedQuartzFabric::from_broken_links(
            fabric(9, 1, MeshRouting::EcmpDirect),
            &model,
            &broken,
        );
        assert_eq!(f.severed_channels(), {
            let mut s = severed.clone();
            s.sort_unstable();
            s.dedup();
            s
        });
    }

    #[test]
    fn intact_degraded_fabric_equals_the_base() {
        let base = fabric(6, 2, MeshRouting::VlbUniform(0.4));
        let f = DegradedQuartzFabric::new(base.clone(), &[]);
        let d = crate::matrix::random_permutation(12, 3);
        let a = max_min_rates(&base.problem(&d));
        let b = max_min_rates(&f.problem(&d));
        assert_eq!(a, b, "no cuts ⇒ identical allocation");
    }
}
