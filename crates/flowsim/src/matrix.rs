//! The §5.1 traffic patterns.
//!
//! 1. **Random permutation** — "Each server sends traffic to one randomly
//!    selected server, while at the same time, it receives traffic from a
//!    different randomly selected server": a random derangement.
//! 2. **Incast** — "Each server receives traffic from 10 servers at
//!    random locations of the network, which simulates the shuffle stage
//!    in a MapReduce workload."
//! 3. **Rack-level shuffle** — "Servers in a rack send traffic to servers
//!    in several different racks", the VM-migration / rebalancing load.
//!
//! Every generator is deterministic for a given seed.

use quartz_core::rng::{SliceRandom, StdRng};

/// One demand: `(source host, destination host)`.
pub type Demand = (usize, usize);

/// Random permutation traffic: every host sends to exactly one other
/// host and receives from exactly one (a derangement).
pub fn random_permutation(hosts: usize, seed: u64) -> Vec<Demand> {
    assert!(hosts >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..hosts).collect();
    // Shuffle until no fixed point (expected ~e attempts... actually
    // resampling only fixed points via swap is cheaper and exact).
    loop {
        perm.shuffle(&mut rng);
        if perm.iter().enumerate().all(|(i, &p)| i != p) {
            break;
        }
    }
    (0..hosts).map(|i| (i, perm[i])).collect()
}

/// Incast traffic: every host receives from `fan_in` distinct random
/// senders (10 in the paper).
pub fn incast(hosts: usize, fan_in: usize, seed: u64) -> Vec<Demand> {
    assert!(fan_in < hosts, "need more hosts than fan-in");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut demands = Vec::with_capacity(hosts * fan_in);
    for dst in 0..hosts {
        let mut senders = Vec::with_capacity(fan_in);
        while senders.len() < fan_in {
            let s = rng.random_range(0..hosts);
            if s != dst && !senders.contains(&s) {
                senders.push(s);
            }
        }
        for s in senders {
            demands.push((s, dst));
        }
    }
    demands
}

/// Rack-level shuffle: each rack picks `target_racks` other racks and its
/// servers send one flow each to a random server in one of those racks
/// (round-robin over the targets).
pub fn rack_shuffle(
    racks: usize,
    hosts_per_rack: usize,
    target_racks: usize,
    seed: u64,
) -> Vec<Demand> {
    assert!(target_racks >= 1 && target_racks < racks);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut demands = Vec::with_capacity(racks * hosts_per_rack);
    for r in 0..racks {
        let mut others: Vec<usize> = (0..racks).filter(|&x| x != r).collect();
        others.shuffle(&mut rng);
        let targets = &others[..target_racks];
        for i in 0..hosts_per_rack {
            let src = r * hosts_per_rack + i;
            let tr = targets[i % target_racks];
            let dst = tr * hosts_per_rack + rng.random_range(0..hosts_per_rack);
            demands.push((src, dst));
        }
    }
    demands
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn permutation_is_a_derangement() {
        let d = random_permutation(100, 7);
        assert_eq!(d.len(), 100);
        let mut in_deg = BTreeMap::new();
        for &(s, t) in &d {
            assert_ne!(s, t, "self-demand");
            *in_deg.entry(t).or_insert(0) += 1;
        }
        assert!(in_deg.values().all(|&c| c == 1));
        assert_eq!(in_deg.len(), 100);
    }

    #[test]
    fn permutation_deterministic_per_seed() {
        assert_eq!(random_permutation(64, 3), random_permutation(64, 3));
        assert_ne!(random_permutation(64, 3), random_permutation(64, 4));
    }

    #[test]
    fn incast_has_exact_fan_in() {
        let d = incast(50, 10, 1);
        assert_eq!(d.len(), 500);
        let mut in_deg = BTreeMap::new();
        for &(s, t) in &d {
            assert_ne!(s, t);
            *in_deg.entry(t).or_insert(0usize) += 1;
        }
        assert!(in_deg.values().all(|&c| c == 10));
    }

    #[test]
    fn incast_senders_distinct_per_receiver() {
        let d = incast(20, 5, 9);
        for dst in 0..20 {
            let senders: Vec<_> = d
                .iter()
                .filter(|&&(_, t)| t == dst)
                .map(|&(s, _)| s)
                .collect();
            let mut dedup = senders.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), senders.len());
        }
    }

    #[test]
    fn rack_shuffle_leaves_the_rack() {
        let (racks, hpr) = (8, 4);
        let d = rack_shuffle(racks, hpr, 3, 5);
        assert_eq!(d.len(), racks * hpr);
        for &(s, t) in &d {
            assert_ne!(s / hpr, t / hpr, "shuffle stayed in-rack");
        }
    }

    #[test]
    fn rack_shuffle_uses_multiple_targets() {
        let (racks, hpr) = (8, 6);
        let d = rack_shuffle(racks, hpr, 3, 2);
        // Rack 0's servers must hit 3 distinct racks.
        let targets: std::collections::BTreeSet<_> =
            d[..hpr].iter().map(|&(_, t)| t / hpr).collect();
        assert_eq!(targets.len(), 3);
    }
}
