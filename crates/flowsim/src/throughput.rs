//! Normalized throughput — the Figure 10 metric.
//!
//! "The normalized throughput equals 1 if every server can send traffic
//! at its full rate." For unskewed patterns (permutation, shuffle) that
//! is simply the mean max-min rate per flow in line-rate units. For
//! incast the receiver NIC is the unavoidable bottleneck even on an
//! ideal network, so we normalize against the allocation on a fabric
//! constrained *only* by host NICs — an ideal network scores 1.0 by
//! construction and every real fabric scores its fraction of that.

use crate::fabric::Fabric;
use crate::waterfill::{max_min_rates, Problem};

/// A normalized-throughput measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NormalizedThroughput {
    /// Aggregate achieved rate, line-rate units.
    pub aggregate: f64,
    /// Aggregate on the NIC-only ideal reference.
    pub ideal_aggregate: f64,
    /// `aggregate / ideal_aggregate`.
    pub normalized: f64,
}

/// The reference allocation: same demands, but the only constraints are
/// the sender and receiver NICs.
fn nic_only_aggregate(hosts: usize, demands: &[(usize, usize)]) -> f64 {
    let mut p = Problem::default();
    for _ in 0..2 * hosts {
        p.add_link(1.0);
    }
    for &(s, d) in demands {
        p.add_flow(vec![(s, 1.0), (hosts + d, 1.0)]);
    }
    max_min_rates(&p).iter().sum()
}

/// Normalized throughput of a Quartz mesh with an *adaptive* VLB split:
/// the best detour fraction from `ks` is chosen for the pattern, modeling
/// §3.4's "the parameter k can be adaptive depending on the traffic
/// characteristics". Returns `(best throughput, best k)`.
pub fn adaptive_quartz_throughput(
    racks: usize,
    hosts_per_rack: usize,
    channel_cap: f64,
    demands: &[(usize, usize)],
    ks: &[f64],
) -> (NormalizedThroughput, f64) {
    use crate::fabric::{MeshRouting, QuartzFabric};
    assert!(!ks.is_empty(), "need at least one candidate k");
    let mut best: Option<(NormalizedThroughput, f64)> = None;
    // Per-pair adaptive VLB (reported as k = −1.0) competes with every
    // uniform candidate.
    let mut candidates: Vec<(MeshRouting, f64)> = vec![(MeshRouting::VlbAdaptive, -1.0)];
    candidates.extend(ks.iter().map(|&k| {
        let r = if k == 0.0 {
            MeshRouting::EcmpDirect
        } else {
            MeshRouting::VlbUniform(k)
        };
        (r, k)
    }));
    for (policy, k) in candidates {
        let f = QuartzFabric {
            racks,
            hosts_per_rack,
            channel_cap,
            policy,
        };
        let t = normalized_throughput(&f, demands);
        // total_cmp: total over NaN and identical to `>` for the
        // finite throughputs the solver returns.
        if best.is_none_or(|(b, _)| t.normalized.total_cmp(&b.normalized).is_gt()) {
            best = Some((t, k));
        }
    }
    best.expect("candidates non-empty")
}

/// The default candidate detour fractions for adaptive VLB sweeps.
pub const DEFAULT_KS: [f64; 6] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

/// Computes the normalized throughput of `fabric` under `demands`.
///
/// # Examples
///
/// ```
/// use quartz_flowsim::fabric::OversubscribedFabric;
/// use quartz_flowsim::matrix::random_permutation;
/// use quartz_flowsim::throughput::normalized_throughput;
///
/// // A full-bisection network scores 1.0 on any permutation.
/// let ideal = OversubscribedFabric::ideal(8, 4);
/// let demands = random_permutation(32, 7);
/// let t = normalized_throughput(&ideal, &demands);
/// assert!((t.normalized - 1.0).abs() < 1e-9);
/// ```
pub fn normalized_throughput<F: Fabric>(
    fabric: &F,
    demands: &[(usize, usize)],
) -> NormalizedThroughput {
    let rates = max_min_rates(&fabric.problem(demands));
    score(fabric, demands, rates)
}

/// [`normalized_throughput`] with the waterfill solver metered into
/// `metrics` (`waterfill.calls` / `waterfill.iterations` counters; see
/// [`crate::waterfill::max_min_rates_metered`]). Same answer, same
/// numerics — the observability layer only counts.
pub fn normalized_throughput_metered<F: Fabric>(
    fabric: &F,
    demands: &[(usize, usize)],
    metrics: &mut quartz_obs::MetricsRegistry,
) -> NormalizedThroughput {
    let rates = crate::waterfill::max_min_rates_metered(&fabric.problem(demands), metrics);
    score(fabric, demands, rates)
}

/// Folds solved per-flow rates into the normalized score.
fn score<F: Fabric>(
    fabric: &F,
    demands: &[(usize, usize)],
    rates: Vec<f64>,
) -> NormalizedThroughput {
    let aggregate: f64 = rates.iter().sum();
    let ideal_aggregate = nic_only_aggregate(fabric.hosts(), demands);
    NormalizedThroughput {
        aggregate,
        ideal_aggregate,
        normalized: if ideal_aggregate > 0.0 {
            aggregate / ideal_aggregate
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{OversubscribedFabric, QuartzFabric};
    use crate::matrix::{incast, rack_shuffle, random_permutation};
    use quartz_core::routing::RoutingPolicy;

    const RACKS: usize = 16;
    const HPR: usize = 8;

    fn quartz(policy: RoutingPolicy) -> QuartzFabric {
        QuartzFabric {
            racks: RACKS,
            hosts_per_rack: HPR,
            channel_cap: 1.0,
            policy: policy.into(),
        }
    }

    #[test]
    fn ideal_network_scores_one_on_permutation() {
        let f = OversubscribedFabric::ideal(RACKS, HPR);
        let d = random_permutation(RACKS * HPR, 1);
        let t = normalized_throughput(&f, &d);
        assert!((t.normalized - 1.0).abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn metered_throughput_is_bit_identical_and_counts_solver_work() {
        let f = quartz(RoutingPolicy::EcmpDirect);
        let d = random_permutation(RACKS * HPR, 3);
        let plain = normalized_throughput(&f, &d);
        let mut m = quartz_obs::MetricsRegistry::new();
        let metered = normalized_throughput_metered(&f, &d, &mut m);
        assert_eq!(plain, metered);
        assert_eq!(m.counter("waterfill.calls"), 1);
        assert!(m.counter("waterfill.iterations") >= 1);
    }

    #[test]
    fn ideal_network_scores_one_on_incast() {
        // Even though each flow only gets 1/10 of a NIC, the ideal
        // network matches the NIC-only reference exactly.
        let f = OversubscribedFabric::ideal(RACKS, HPR);
        let d = incast(RACKS * HPR, 10, 2);
        let t = normalized_throughput(&f, &d);
        assert!((t.normalized - 1.0).abs() < 1e-9, "{t:?}");
    }

    #[test]
    fn quartz_close_to_ideal_on_permutation() {
        // Figure 10: "For random permutation traffic and incast traffic,
        // Quartz throughput is about 90% of a full bisection bandwidth
        // network" — with the adaptive detour fraction of §3.4.
        let d = random_permutation(RACKS * HPR, 1);
        let (t, _k) = adaptive_quartz_throughput(RACKS, HPR, 1.0, &d, &DEFAULT_KS);
        assert!(t.normalized > 0.85, "{t:?}");
        assert!(t.normalized <= 1.0 + 1e-9);
    }

    #[test]
    fn quartz_beats_quarter_bisection_everywhere() {
        // Figure 10's bottom line: Quartz sits between ½ and full
        // bisection; ¼ bisection trails on every pattern.
        let q = quartz(RoutingPolicy::vlb(0.5));
        let quarter = OversubscribedFabric {
            racks: RACKS,
            hosts_per_rack: HPR,
            oversub: 4.0,
        };
        for (name, d) in [
            ("perm", random_permutation(RACKS * HPR, 3)),
            ("incast", incast(RACKS * HPR, 10, 3)),
            ("shuffle", rack_shuffle(RACKS, HPR, 4, 3)),
        ] {
            let tq = normalized_throughput(&q, &d).normalized;
            let t4 = normalized_throughput(&quarter, &d).normalized;
            assert!(tq > t4, "{name}: quartz {tq} vs quarter {t4}");
        }
    }

    #[test]
    fn shuffle_is_quartzs_weak_spot_at_paper_scale() {
        // Figure 10: rack-level shuffle is Quartz's lowest bar (~0.75 in
        // the paper) — the pattern concentrates rack-pair traffic. At the
        // paper's fully loaded 33×32 scale the ordering shows: shuffle <
        // permutation, and both stay above the ½-bisection floor.
        let (racks, hpr) = (33, 32);
        let dsh = rack_shuffle(racks, hpr, 4, 1);
        let dperm = random_permutation(racks * hpr, 1);
        let (tsh, _) = adaptive_quartz_throughput(racks, hpr, 1.0, &dsh, &DEFAULT_KS);
        let (tperm, _) = adaptive_quartz_throughput(racks, hpr, 1.0, &dperm, &DEFAULT_KS);
        assert!(
            tsh.normalized < tperm.normalized,
            "shuffle {tsh:?} should trail permutation {tperm:?}"
        );
        assert!(tsh.normalized > 0.5, "{tsh:?}");
    }

    #[test]
    fn vlb_beats_ecmp_on_concentrated_traffic() {
        let d = rack_shuffle(RACKS, HPR, 2, 5);
        let te = normalized_throughput(&quartz(RoutingPolicy::EcmpDirect), &d).normalized;
        let tv = normalized_throughput(&quartz(RoutingPolicy::vlb(0.5)), &d).normalized;
        assert!(tv > te, "VLB {tv} vs ECMP {te}");
    }

    #[test]
    fn oversubscription_ladder_is_monotone() {
        let d = random_permutation(RACKS * HPR, 9);
        let t = |o: f64| {
            normalized_throughput(
                &OversubscribedFabric {
                    racks: RACKS,
                    hosts_per_rack: HPR,
                    oversub: o,
                },
                &d,
            )
            .normalized
        };
        let (t1, t2, t4) = (t(1.0), t(2.0), t(4.0));
        assert!(t1 >= t2 && t2 >= t4, "{t1} {t2} {t4}");
        assert!(t4 < 0.5, "quarter bisection must hurt: {t4}");
    }
}
