//! Weighted max-min fair rate allocation by progressive filling.
//!
//! A [`Problem`] is a set of capacitated links and a set of flows; flow
//! `f` at rate `r` consumes `w · r` on each link it touches with weight
//! `w`. Single-path flows have weight 1 on every link of their path;
//! split-path flows (ECMP fan-out, VLB detours) carry the split fraction
//! as the weight.
//!
//! Progressive filling: raise every unfrozen flow's rate together until
//! some link saturates; freeze the flows using that link; repeat. The
//! result is the (weighted) max-min fair allocation — the classic model
//! of what a congestion-controlled transport converges to.

/// A max-min allocation problem.
#[derive(Clone, Debug, Default)]
pub struct Problem {
    /// Link capacities (any consistent rate unit).
    pub caps: Vec<f64>,
    /// Flows: each a list of `(link, weight)` with positive weights.
    pub flows: Vec<Vec<(usize, f64)>>,
    /// Optional per-flow demand caps (a flow never exceeds its offered
    /// load). Empty means every flow is greedy. Modeled as a private
    /// unit-weight link per capped flow, which keeps the solver and the
    /// max-min property untouched.
    pub demands: Vec<Option<f64>>,
}

impl Problem {
    /// Adds a link of capacity `cap`, returning its index.
    pub fn add_link(&mut self, cap: f64) -> usize {
        assert!(cap > 0.0, "capacity must be positive");
        self.caps.push(cap);
        self.caps.len() - 1
    }

    /// Adds a flow over `(link, weight)` pairs, returning its index.
    ///
    /// # Panics
    /// Panics on unknown links, non-positive weights, or an empty path.
    pub fn add_flow(&mut self, links: Vec<(usize, f64)>) -> usize {
        assert!(!links.is_empty(), "a flow must traverse at least one link");
        for &(l, w) in &links {
            assert!(l < self.caps.len(), "unknown link {l}");
            assert!(w > 0.0, "weights must be positive, got {w}");
        }
        self.flows.push(links);
        self.demands.push(None);
        self.flows.len() - 1
    }

    /// Adds a flow with an offered-load cap: its max-min rate never
    /// exceeds `demand`.
    ///
    /// # Panics
    /// As [`Problem::add_flow`], plus non-positive demands.
    pub fn add_flow_with_demand(&mut self, links: Vec<(usize, f64)>, demand: f64) -> usize {
        assert!(demand > 0.0, "demand must be positive, got {demand}");
        let idx = self.add_flow(links);
        self.demands[idx] = Some(demand);
        idx
    }

    /// Lowers demand caps into private unit-weight links, yielding an
    /// equivalent uncapped problem.
    fn lowered(&self) -> Problem {
        if self.demands.iter().all(Option::is_none) {
            return Problem {
                caps: self.caps.clone(),
                flows: self.flows.clone(),
                demands: Vec::new(),
            };
        }
        let mut p = Problem {
            caps: self.caps.clone(),
            flows: self.flows.clone(),
            demands: Vec::new(),
        };
        for (f, d) in self.demands.iter().enumerate() {
            if let Some(d) = d {
                p.caps.push(*d);
                p.flows[f].push((p.caps.len() - 1, 1.0));
            }
        }
        p
    }
}

/// Computes the weighted max-min fair rates for every flow.
///
/// Runtime is `O(iterations × Σ|paths|)` with at most one iteration per
/// link — comfortably fast for thousands of flows.
///
/// # Examples
///
/// ```
/// use quartz_flowsim::waterfill::{max_min_rates, Problem};
///
/// let mut p = Problem::default();
/// let link = p.add_link(10.0);
/// p.add_flow(vec![(link, 1.0)]);
/// p.add_flow(vec![(link, 1.0)]);
/// assert_eq!(max_min_rates(&p), vec![5.0, 5.0]);
/// ```
pub fn max_min_rates(p: &Problem) -> Vec<f64> {
    max_min_rates_counted(p).0
}

/// [`max_min_rates`] plus the number of progressive-filling iterations
/// (bottleneck links frozen). The count is the solver-cost signal the
/// observability layer aggregates: each iteration saturates one link,
/// so it is bounded by the link count and deterministic for a given
/// problem.
pub fn max_min_rates_counted(p: &Problem) -> (Vec<f64>, u64) {
    let mut iterations = 0u64;
    let p = &p.lowered();
    let nf = p.flows.len();
    let nl = p.caps.len();
    let mut rate = vec![f64::INFINITY; nf];
    let mut frozen = vec![false; nf];
    let mut cap_left = p.caps.clone();
    // Total unfrozen weight per link.
    let mut weight_on = vec![0.0f64; nl];
    for f in p.flows.iter() {
        for &(l, w) in f {
            weight_on[l] += w;
        }
    }

    loop {
        // Find the tightest link among links still carrying unfrozen
        // flows.
        let mut best: Option<(usize, f64)> = None;
        for l in 0..nl {
            if weight_on[l] > 1e-12 {
                let share = cap_left[l] / weight_on[l];
                // total_cmp: total over NaN and identical to `<` for
                // the non-negative finite shares this loop produces.
                if best.is_none_or(|(_, s)| share.total_cmp(&s).is_lt()) {
                    best = Some((l, share));
                }
            }
        }
        let Some((l_star, share)) = best else {
            break; // every flow frozen
        };
        iterations += 1;
        let share = share.max(0.0);

        // Freeze every unfrozen flow touching l_star at `share`.
        let to_freeze: Vec<usize> = (0..nf)
            .filter(|&f| !frozen[f] && p.flows[f].iter().any(|&(l, _)| l == l_star))
            .collect();
        debug_assert!(!to_freeze.is_empty(), "bottleneck without flows");
        for f in to_freeze {
            frozen[f] = true;
            rate[f] = share;
            for &(l, w) in &p.flows[f] {
                cap_left[l] -= w * share;
                weight_on[l] -= w;
                if cap_left[l] < 0.0 {
                    cap_left[l] = 0.0; // numerical dust
                }
            }
        }
    }

    // Flows that never hit a bottleneck (possible only in degenerate
    // problems) keep rate 0 rather than ∞.
    for r in &mut rate {
        if !r.is_finite() {
            *r = 0.0;
        }
    }
    (rate, iterations)
}

/// [`max_min_rates`] that meters itself into a metrics registry:
/// bumps `waterfill.calls` and `waterfill.iterations`, and tracks the
/// per-call iteration maximum in `waterfill.iterations_max`.
pub fn max_min_rates_metered(p: &Problem, metrics: &mut quartz_obs::MetricsRegistry) -> Vec<f64> {
    let (rates, iterations) = max_min_rates_counted(p);
    metrics.inc("waterfill.calls", 1);
    metrics.inc("waterfill.iterations", iterations);
    let prev = metrics.counter("waterfill.iterations_max");
    if iterations > prev {
        metrics.inc("waterfill.iterations_max", iterations - prev);
    }
    rates
}

/// Checks the max-min property: the allocation is feasible, and every
/// flow has a *bottleneck* — a saturated link on which no other flow has
/// a strictly higher rate. Used by tests and exposed for callers who want
/// to assert solver correctness on their own problems.
pub fn is_max_min(p: &Problem, rates: &[f64]) -> bool {
    let nl = p.caps.len();
    let mut used = vec![0.0f64; nl];
    for (f, path) in p.flows.iter().enumerate() {
        for &(l, w) in path {
            used[l] += w * rates[f];
        }
    }
    // Feasibility.
    for (u, cap) in used.iter().zip(&p.caps) {
        if *u > cap * (1.0 + 1e-9) + 1e-9 {
            return false;
        }
    }
    // Bottleneck condition.
    for (f, path) in p.flows.iter().enumerate() {
        let has_bottleneck = path.iter().any(|&(l, _)| {
            let saturated = used[l] >= p.caps[l] * (1.0 - 1e-9) - 1e-9;
            let is_top = p
                .flows
                .iter()
                .enumerate()
                .filter(|(_, q)| q.iter().any(|&(m, _)| m == l))
                .all(|(g, _)| rates[g] <= rates[f] * (1.0 + 1e-9) + 1e-9);
            saturated && is_top
        });
        if !has_bottleneck {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_flows_share_a_link_equally() {
        let mut p = Problem::default();
        let l = p.add_link(10.0);
        p.add_flow(vec![(l, 1.0)]);
        p.add_flow(vec![(l, 1.0)]);
        let r = max_min_rates(&p);
        assert_eq!(r, vec![5.0, 5.0]);
        assert!(is_max_min(&p, &r));
    }

    #[test]
    fn classic_three_link_chain() {
        // Textbook: flows A (links 0,1), B (link 0), C (link 1), caps 1.
        // Max-min: A = B = C = 0.5.
        let mut p = Problem::default();
        let l0 = p.add_link(1.0);
        let l1 = p.add_link(1.0);
        p.add_flow(vec![(l0, 1.0), (l1, 1.0)]);
        p.add_flow(vec![(l0, 1.0)]);
        p.add_flow(vec![(l1, 1.0)]);
        let r = max_min_rates(&p);
        for x in &r {
            assert!((x - 0.5).abs() < 1e-9, "{r:?}");
        }
        assert!(is_max_min(&p, &r));
    }

    #[test]
    fn unequal_bottlenecks_give_unequal_rates() {
        // Flow A alone on a fat link after sharing a thin one: classic
        // max-min gives the leftover to the unconstrained flow.
        let mut p = Problem::default();
        let thin = p.add_link(1.0);
        let fat = p.add_link(10.0);
        p.add_flow(vec![(thin, 1.0)]); // A
        p.add_flow(vec![(thin, 1.0), (fat, 1.0)]); // B
        p.add_flow(vec![(fat, 1.0)]); // C
        let r = max_min_rates(&p);
        assert!((r[0] - 0.5).abs() < 1e-9);
        assert!((r[1] - 0.5).abs() < 1e-9);
        assert!((r[2] - 9.5).abs() < 1e-9);
        assert!(is_max_min(&p, &r));
    }

    #[test]
    fn weights_scale_consumption() {
        // A split flow with weight 0.5 on each of two parallel links and
        // a whole flow on one of them.
        let mut p = Problem::default();
        let a = p.add_link(1.0);
        let b = p.add_link(1.0);
        let split = p.add_flow(vec![(a, 0.5), (b, 0.5)]);
        let whole = p.add_flow(vec![(a, 1.0)]);
        let r = max_min_rates(&p);
        // Link a: 0.5·r_split + r_whole ≤ 1, equal rates at the
        // bottleneck: r = 1/1.5 = 2/3. The split flow is then capped by
        // link b? 0.5 · 2/3 = 1/3 < 1 — no, both freeze at 2/3.
        assert!((r[split] - 2.0 / 3.0).abs() < 1e-9, "{r:?}");
        assert!((r[whole] - 2.0 / 3.0).abs() < 1e-9);
        assert!(is_max_min(&p, &r));
    }

    #[test]
    fn empty_problem() {
        let r = max_min_rates(&Problem::default());
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "must traverse")]
    fn empty_flow_rejected() {
        let mut p = Problem::default();
        p.add_flow(vec![]);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn unknown_link_rejected() {
        let mut p = Problem::default();
        p.add_flow(vec![(3, 1.0)]);
    }

    #[test]
    fn large_random_problems_are_max_min() {
        // Deterministic pseudo-random stress: the solver's output always
        // satisfies the max-min bottleneck condition.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let mut p = Problem::default();
            let nl = 10 + (next() % 20) as usize;
            for _ in 0..nl {
                p.add_link(1.0 + (next() % 10) as f64);
            }
            let nf = 20 + (next() % 30) as usize;
            for _ in 0..nf {
                let hops = 1 + (next() % 4) as usize;
                let mut path = Vec::new();
                for _ in 0..hops {
                    let l = (next() % nl as u64) as usize;
                    if !path.iter().any(|&(m, _)| m == l) {
                        path.push((l, 1.0));
                    }
                }
                if !path.is_empty() {
                    p.add_flow(path);
                }
            }
            let r = max_min_rates(&p);
            assert!(is_max_min(&p, &r), "trial {trial} failed");
        }
    }

    #[test]
    fn demand_caps_bind_when_lower_than_fair_share() {
        let mut p = Problem::default();
        let l = p.add_link(10.0);
        p.add_flow_with_demand(vec![(l, 1.0)], 2.0); // wants only 2
        p.add_flow(vec![(l, 1.0)]); // greedy
        let r = max_min_rates(&p);
        assert!((r[0] - 2.0).abs() < 1e-9, "{r:?}");
        assert!(
            (r[1] - 8.0).abs() < 1e-9,
            "capped flow's leftovers go to the greedy one"
        );
    }

    #[test]
    fn slack_demand_caps_change_nothing() {
        let mut p = Problem::default();
        let l = p.add_link(10.0);
        p.add_flow_with_demand(vec![(l, 1.0)], 100.0);
        p.add_flow(vec![(l, 1.0)]);
        let r = max_min_rates(&p);
        assert_eq!(r, vec![5.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "demand must be positive")]
    fn nonpositive_demand_rejected() {
        let mut p = Problem::default();
        let l = p.add_link(1.0);
        p.add_flow_with_demand(vec![(l, 1.0)], 0.0);
    }

    #[test]
    fn counted_and_metered_solvers_match_the_plain_one() {
        // Two links, three flows: the 1 G link bottlenecks first, the
        // 10 G link second — exactly two progressive-filling rounds.
        let mut p = Problem::default();
        let fast = p.add_link(10.0);
        let slow = p.add_link(1.0);
        p.add_flow(vec![(fast, 1.0), (slow, 1.0)]);
        p.add_flow(vec![(fast, 1.0)]);
        p.add_flow(vec![(slow, 1.0)]);

        let plain = max_min_rates(&p);
        let (counted, iterations) = max_min_rates_counted(&p);
        assert_eq!(plain, counted);
        assert_eq!(iterations, 2);
        // Each iteration saturates one link, so ≤ link count always.
        assert!(iterations <= p.caps.len() as u64);

        let mut m = quartz_obs::MetricsRegistry::new();
        let metered = max_min_rates_metered(&p, &mut m);
        let _ = max_min_rates_metered(&p, &mut m);
        assert_eq!(metered, plain);
        assert_eq!(m.counter("waterfill.calls"), 2);
        assert_eq!(m.counter("waterfill.iterations"), 2 * iterations);
        assert_eq!(m.counter("waterfill.iterations_max"), iterations);
    }
}
