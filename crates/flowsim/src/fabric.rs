//! Capacity models of the fabrics Figure 10 compares.
//!
//! All capacities are normalized to the server line rate (1.0 = one NIC).
//!
//! * [`QuartzFabric`] — `racks` switches in a full mesh of unit-rate
//!   channels, `hosts_per_rack` servers each. Routing per §3.4: ECMP
//!   (direct channel only) or VLB (fraction `k` sprayed over the
//!   `racks − 2` two-hop detours).
//! * [`OversubscribedFabric`] — a folded-Clos abstraction with an ideal
//!   core: each rack's uplink carries `hosts_per_rack / oversub`. With
//!   `oversub = 1` this is the ideal full-bisection fabric; 2 and 4 give
//!   the paper's ½- and ¼-bisection comparison points.

use crate::waterfill::Problem;
use quartz_core::routing::RoutingPolicy;
use std::collections::BTreeMap;

/// A demand endpoint: global host index.
pub type Host = usize;

/// How traffic crosses the mesh (§3.4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MeshRouting {
    /// ECMP: the single direct channel only.
    EcmpDirect,
    /// Valiant load balancing with one global detour fraction `k`.
    VlbUniform(f64),
    /// Per-pair adaptive VLB: "the parameter k can be adaptive depending
    /// on the traffic characteristics" — each rack pair detours only the
    /// traffic its direct channel cannot carry
    /// (`k = max(0, 1 − capacity/demand)`), so uncongested pairs pay no
    /// two-hop overhead at all.
    VlbAdaptive,
}

impl From<RoutingPolicy> for MeshRouting {
    fn from(p: RoutingPolicy) -> Self {
        match p {
            RoutingPolicy::EcmpDirect => MeshRouting::EcmpDirect,
            RoutingPolicy::Vlb { indirect_fraction } => MeshRouting::VlbUniform(indirect_fraction),
        }
    }
}

/// Anything that can lower a demand set into a max-min [`Problem`].
pub trait Fabric {
    /// Number of hosts.
    fn hosts(&self) -> usize;

    /// Builds the allocation problem for the given `(src, dst)` demands.
    fn problem(&self, demands: &[(Host, Host)]) -> Problem;

    /// The rack (switch) a host belongs to.
    fn rack_of(&self, h: Host) -> usize;
}

/// The Quartz mesh fabric.
#[derive(Clone, Debug)]
pub struct QuartzFabric {
    /// Switches in the ring (racks).
    pub racks: usize,
    /// Servers per switch.
    pub hosts_per_rack: usize,
    /// Capacity of each pairwise channel, in server line rates (1.0 for
    /// the paper's 10 G channels and 10 G NICs).
    pub channel_cap: f64,
    /// Routing policy (§3.4).
    pub policy: MeshRouting,
}

impl QuartzFabric {
    /// The paper's flagship mesh: 33 racks × 32 servers, unit channels.
    pub fn paper(policy: impl Into<MeshRouting>) -> Self {
        QuartzFabric {
            racks: 33,
            hosts_per_rack: 32,
            channel_cap: 1.0,
            policy: policy.into(),
        }
    }

    /// Directed channel link index for `a → b` within the problem's link
    /// table (after the 2·hosts host links).
    pub(crate) fn chan(&self, a: usize, b: usize) -> usize {
        debug_assert!(a != b);
        2 * self.hosts() + a * self.racks + b
    }
}

impl Fabric for QuartzFabric {
    fn hosts(&self) -> usize {
        self.racks * self.hosts_per_rack
    }

    fn rack_of(&self, h: Host) -> usize {
        h / self.hosts_per_rack
    }

    fn problem(&self, demands: &[(Host, Host)]) -> Problem {
        let mut p = Problem::default();
        let nh = self.hosts();
        // Links 0..nh: host uplinks; nh..2nh: host downlinks.
        for _ in 0..2 * nh {
            p.add_link(1.0);
        }
        // Directed channels, racks × racks (self-entries unused but
        // allocated for O(1) indexing).
        for _ in 0..self.racks * self.racks {
            p.add_link(self.channel_cap);
        }

        // For adaptive VLB: how many cross-rack flows share each ordered
        // rack pair — the "traffic characteristics" k adapts to.
        let mut pair_flows: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        if self.policy == MeshRouting::VlbAdaptive {
            for &(s, d) in demands {
                let (ra, rb) = (self.rack_of(s), self.rack_of(d));
                if ra != rb {
                    *pair_flows.entry((ra, rb)).or_insert(0) += 1;
                }
            }
        }

        for &(s, d) in demands {
            assert!(s < nh && d < nh && s != d, "bad demand ({s},{d})");
            let (ra, rb) = (self.rack_of(s), self.rack_of(d));
            let mut path = vec![(s, 1.0), (nh + d, 1.0)];
            if ra != rb {
                // Detour fraction and the set of intermediates to spread
                // it over.
                let (k, intermediates): (f64, Vec<usize>) = match self.policy {
                    MeshRouting::EcmpDirect => (0.0, Vec::new()),
                    MeshRouting::VlbUniform(k) => {
                        (k, (0..self.racks).filter(|&w| w != ra && w != rb).collect())
                    }
                    MeshRouting::VlbAdaptive => {
                        // Detour only the traffic the direct channel
                        // cannot carry if every sharer sent at line rate,
                        // and spread it only over intermediates whose two
                        // channel legs are not already claimed by direct
                        // traffic (an adaptive VLB would never spill onto
                        // someone else's saturated channel).
                        let j = pair_flows[&(ra, rb)] as f64;
                        let k = (1.0 - self.channel_cap / j).max(0.0);
                        if k == 0.0 {
                            (0.0, Vec::new())
                        } else {
                            let direct_load =
                                |x: usize, y: usize| *pair_flows.get(&(x, y)).unwrap_or(&0) as f64;
                            let free: Vec<usize> = (0..self.racks)
                                .filter(|&w| {
                                    w != ra
                                        && w != rb
                                        && direct_load(ra, w) < self.channel_cap
                                        && direct_load(w, rb) < self.channel_cap
                                })
                                .collect();
                            if free.is_empty() {
                                (k, (0..self.racks).filter(|&w| w != ra && w != rb).collect())
                            } else {
                                (k, free)
                            }
                        }
                    }
                };
                let direct = 1.0 - k;
                if direct > 0.0 {
                    path.push((self.chan(ra, rb), direct));
                }
                if k > 0.0 && !intermediates.is_empty() {
                    let share = k / intermediates.len() as f64;
                    for w in intermediates {
                        path.push((self.chan(ra, w), share));
                        path.push((self.chan(w, rb), share));
                    }
                }
            }
            p.add_flow(path);
        }
        p
    }
}

/// A folded-Clos fabric with an ideal core and configurable rack-uplink
/// oversubscription.
#[derive(Clone, Debug)]
pub struct OversubscribedFabric {
    /// Racks.
    pub racks: usize,
    /// Servers per rack.
    pub hosts_per_rack: usize,
    /// Oversubscription factor: 1.0 = full bisection, 2.0 = ½, 4.0 = ¼.
    pub oversub: f64,
}

impl OversubscribedFabric {
    /// Full-bisection ideal network at the paper's mesh scale.
    pub fn ideal(racks: usize, hosts_per_rack: usize) -> Self {
        OversubscribedFabric {
            racks,
            hosts_per_rack,
            oversub: 1.0,
        }
    }
}

impl Fabric for OversubscribedFabric {
    fn hosts(&self) -> usize {
        self.racks * self.hosts_per_rack
    }

    fn rack_of(&self, h: Host) -> usize {
        h / self.hosts_per_rack
    }

    fn problem(&self, demands: &[(Host, Host)]) -> Problem {
        let mut p = Problem::default();
        let nh = self.hosts();
        for _ in 0..2 * nh {
            p.add_link(1.0);
        }
        let up_cap = (self.hosts_per_rack as f64 / self.oversub).max(1e-9);
        // racks × (uplink, downlink).
        for _ in 0..2 * self.racks {
            p.add_link(up_cap);
        }
        let rack_up = |r: usize| 2 * nh + 2 * r;
        let rack_down = |r: usize| 2 * nh + 2 * r + 1;

        for &(s, d) in demands {
            assert!(s < nh && d < nh && s != d, "bad demand ({s},{d})");
            let (ra, rb) = (self.rack_of(s), self.rack_of(d));
            let mut path = vec![(s, 1.0), (nh + d, 1.0)];
            if ra != rb {
                path.push((rack_up(ra), 1.0));
                path.push((rack_down(rb), 1.0));
            }
            p.add_flow(path);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waterfill::max_min_rates;

    #[test]
    fn quartz_direct_channel_is_shared() {
        // 4 racks × 2 hosts; both hosts of rack 0 send to rack 1: the
        // unit channel splits 0.5/0.5 under ECMP.
        let f = QuartzFabric {
            racks: 4,
            hosts_per_rack: 2,
            channel_cap: 1.0,
            policy: RoutingPolicy::EcmpDirect.into(),
        };
        let demands = vec![(0, 2), (1, 3)];
        let r = max_min_rates(&f.problem(&demands));
        assert_eq!(r, vec![0.5, 0.5]);
    }

    #[test]
    fn vlb_unlocks_detour_capacity() {
        // Same demand with VLB k = 2/3: direct carries 1/3, each of the
        // two detours 1/3 → per-flow rate can reach 1.0 (host limited).
        let f = QuartzFabric {
            racks: 4,
            hosts_per_rack: 2,
            channel_cap: 1.0,
            policy: RoutingPolicy::vlb(2.0 / 3.0).into(),
        };
        let demands = vec![(0, 2), (1, 3)];
        let r = max_min_rates(&f.problem(&demands));
        for x in &r {
            assert!(*x > 0.99, "{r:?}");
        }
    }

    #[test]
    fn same_rack_traffic_skips_channels() {
        let f = QuartzFabric {
            racks: 3,
            hosts_per_rack: 2,
            channel_cap: 0.01, // tiny channels must not matter
            policy: RoutingPolicy::EcmpDirect.into(),
        };
        let r = max_min_rates(&f.problem(&[(0, 1)]));
        assert_eq!(r, vec![1.0]);
    }

    #[test]
    fn ideal_fabric_gives_line_rate_permutation() {
        let f = OversubscribedFabric::ideal(4, 4);
        // A perfect cross-rack permutation.
        let demands: Vec<_> = (0..16).map(|h| (h, (h + 4) % 16)).collect();
        let r = max_min_rates(&f.problem(&demands));
        for x in &r {
            assert!((x - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn oversubscription_caps_cross_rack_rate() {
        // 4:1 oversubscription: 4 hosts share a 1-host-rate uplink.
        let f = OversubscribedFabric {
            racks: 2,
            hosts_per_rack: 4,
            oversub: 4.0,
        };
        let demands: Vec<_> = (0..4).map(|h| (h, h + 4)).collect();
        let r = max_min_rates(&f.problem(&demands));
        for x in &r {
            assert!((x - 0.25).abs() < 1e-9, "{r:?}");
        }
    }

    #[test]
    fn rack_of_is_contiguous() {
        let f = QuartzFabric::paper(RoutingPolicy::EcmpDirect);
        assert_eq!(f.hosts(), 1056);
        assert_eq!(f.rack_of(0), 0);
        assert_eq!(f.rack_of(31), 0);
        assert_eq!(f.rack_of(32), 1);
        assert_eq!(f.rack_of(1055), 32);
    }
}
