//! Regenerates table02 of the paper. Pass `--quick` for a reduced run.
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_table02_components.json`.
fn main() {
    quartz_bench::run_bin(
        "table02_components",
        quartz_bench::experiments::table02::print_ctx,
    );
}
