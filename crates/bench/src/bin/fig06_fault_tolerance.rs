//! Regenerates fig06 of the paper. Pass `--quick` for a reduced run.
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_fig06_fault_tolerance.json`.
fn main() {
    quartz_bench::run_bin(
        "fig06_fault_tolerance",
        quartz_bench::experiments::fig06::print_ctx,
    );
}
