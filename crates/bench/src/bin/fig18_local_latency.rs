//! Regenerates fig18 of the paper. Pass `--quick` for a reduced run.
fn main() {
    quartz_bench::experiments::fig18::print(quartz_bench::Scale::from_args());
}
