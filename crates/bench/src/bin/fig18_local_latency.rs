//! Regenerates fig18 of the paper. Pass `--quick` for a reduced run.
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_fig18_local_latency.json`.
fn main() {
    quartz_bench::run_bin(
        "fig18_local_latency",
        quartz_bench::experiments::fig18::print_ctx,
    );
}
