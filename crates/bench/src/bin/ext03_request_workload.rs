//! Extension experiment E3: the §1 Facebook-style request (88 cache +
//! 35 DB + 392 backend RPCs) end to end. Pass `--quick` for a reduced run.
fn main() {
    quartz_bench::experiments::ext03::print(quartz_bench::Scale::from_args());
}
