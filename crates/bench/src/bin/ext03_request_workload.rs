//! Extension experiment E3: the §1 Facebook-style request (88 cache +
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_ext03_request_workload.json`.
fn main() {
    quartz_bench::run_bin(
        "ext03_request_workload",
        quartz_bench::experiments::ext03::print_ctx,
    );
}
