//! Regenerates fig20 of the paper. Pass `--quick` for a reduced run.
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_fig20_pathological.json`.
fn main() {
    quartz_bench::run_bin(
        "fig20_pathological",
        quartz_bench::experiments::fig20::print_ctx,
    );
}
