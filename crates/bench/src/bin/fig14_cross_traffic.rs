//! Regenerates fig14 of the paper. Pass `--quick` for a reduced run.
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_fig14_cross_traffic.json`.
fn main() {
    quartz_bench::run_bin(
        "fig14_cross_traffic",
        quartz_bench::experiments::fig14::print_ctx,
    );
}
