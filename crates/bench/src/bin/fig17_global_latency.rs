//! Regenerates fig17 of the paper. Pass `--quick` for a reduced run.
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_fig17_global_latency.json`.
fn main() {
    quartz_bench::run_bin(
        "fig17_global_latency",
        quartz_bench::experiments::fig17::print_ctx,
    );
}
