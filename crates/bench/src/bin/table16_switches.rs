//! Regenerates table16 of the paper. Pass `--quick` for a reduced run.
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_table16_switches.json`.
fn main() {
    quartz_bench::run_bin(
        "table16_switches",
        quartz_bench::experiments::table16::print_ctx,
    );
}
