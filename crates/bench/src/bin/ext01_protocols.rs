//! Extension experiment E1: protocol fixes vs topology (§2.1.4
//! quantified). Pass `--quick` for a reduced run.
fn main() {
    quartz_bench::experiments::ext01::print(quartz_bench::Scale::from_args());
}
