//! Extension experiment E1: protocol fixes vs topology (§2.1.4
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_ext01_protocols.json`.
fn main() {
    quartz_bench::run_bin(
        "ext01_protocols",
        quartz_bench::experiments::ext01::print_ctx,
    );
}
