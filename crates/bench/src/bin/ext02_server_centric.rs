//! Extension experiment E2: server-centric structures vs the Quartz mesh
//! (§2.1.5). Pass `--quick` for a reduced run.
fn main() {
    quartz_bench::experiments::ext02::print(quartz_bench::Scale::from_args());
}
