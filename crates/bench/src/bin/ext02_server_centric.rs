//! Extension experiment E2: server-centric structures vs the Quartz mesh
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_ext02_server_centric.json`.
fn main() {
    quartz_bench::run_bin(
        "ext02_server_centric",
        quartz_bench::experiments::ext02::print_ctx,
    );
}
