//! Regenerates fig10 of the paper. Pass `--quick` for a reduced run.
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_fig10_throughput.json`.
fn main() {
    quartz_bench::run_bin(
        "fig10_throughput",
        quartz_bench::experiments::fig10::print_ctx,
    );
}
