//! Regenerates table09 of the paper. Pass `--quick` for a reduced run.
fn main() {
    quartz_bench::experiments::table09::print(quartz_bench::Scale::from_args());
}
