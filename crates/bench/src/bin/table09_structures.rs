//! Regenerates table09 of the paper. Pass `--quick` for a reduced run.
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_table09_structures.json`.
fn main() {
    quartz_bench::run_bin(
        "table09_structures",
        quartz_bench::experiments::table09::print_ctx,
    );
}
