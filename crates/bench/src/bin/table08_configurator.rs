//! Regenerates table08 of the paper. Pass `--quick` for a reduced run.
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_table08_configurator.json`.
fn main() {
    quartz_bench::run_bin(
        "table08_configurator",
        quartz_bench::experiments::table08::print_ctx,
    );
}
