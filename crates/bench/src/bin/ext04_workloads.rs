//! Extension experiment E4: the workload subsystem (trace replay,
//! heavy-tail mix, incast, ring/tree all-reduce) under Reno and DCTCP.
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_ext04_workloads.json`.
fn main() {
    quartz_bench::run_bin(
        "ext04_workloads",
        quartz_bench::experiments::ext04::print_ctx,
    );
}
