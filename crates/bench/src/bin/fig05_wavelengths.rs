//! Regenerates fig05 of the paper. Pass `--quick` for a reduced run.
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_fig05_wavelengths.json`.
fn main() {
    quartz_bench::run_bin(
        "fig05_wavelengths",
        quartz_bench::experiments::fig05::print_ctx,
    );
}
