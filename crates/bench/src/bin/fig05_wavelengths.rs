//! Regenerates fig05 of the paper. Pass `--quick` for a reduced run.
fn main() {
    quartz_bench::experiments::fig05::print(quartz_bench::Scale::from_args());
}
