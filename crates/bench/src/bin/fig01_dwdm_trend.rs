//! Regenerates fig01 of the paper. Pass `--quick` for a reduced run.
//! `--jobs N` sets the worker count (default: all hardware threads);
//! `--trace-out PATH` writes an ndjson trace;
//! set `QUARTZ_BENCH_JSON` to also write `BENCH_fig01_dwdm_trend.json`.
fn main() {
    quartz_bench::run_bin(
        "fig01_dwdm_trend",
        quartz_bench::experiments::fig01::print_ctx,
    );
}
