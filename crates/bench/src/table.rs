//! Fixed-width text tables for experiment output.
//!
//! This module is also the crate's single stdout sink: the
//! `stdout-discipline` lint rule (`quartz-lint`) forbids bare
//! `println!` in library code, so every experiment line goes through
//! [`emit_line`] — usually via the [`outln!`](crate::outln) macro.

/// Writes one line of experiment output to stdout. The only sanctioned
/// `println!` call site in the crate's library code (this file is a
/// `stdout-discipline` sanctuary); everything funnels through here so
/// output stays auditable and byte-stable.
pub fn emit_line(args: std::fmt::Arguments<'_>) {
    println!("{args}");
}

/// `println!` for experiment output, routed through
/// [`table::emit_line`](emit_line). Formats identically to `println!`
/// (same macro input, same trailing newline) so converting a call site
/// never changes a byte of output.
#[macro_export]
macro_rules! outln {
    () => { $crate::table::emit_line(::core::format_args!("")) };
    ($($arg:tt)*) => { $crate::table::emit_line(::core::format_args!($($arg)*)) };
}

/// Prints a fixed-width table: a header row, a rule, then rows. Column
/// widths fit the widest cell; numeric-looking cells are right-aligned.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut width = vec![0usize; cols];
    for (i, h) in headers.iter().enumerate() {
        width[i] = h.chars().count();
    }
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, c) in row.iter().enumerate() {
            width[i] = width[i].max(c.chars().count());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let pad = width[i] - c.chars().count();
            if looks_numeric(c) {
                line.push_str(&" ".repeat(pad));
                line.push_str(c);
            } else {
                line.push_str(c);
                line.push_str(&" ".repeat(pad));
            }
        }
        line.trim_end().to_string()
    };
    let headers_owned: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&headers_owned));
    println!(
        "{}",
        width
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("--")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

fn looks_numeric(s: &str) -> bool {
    let t = s.trim_start_matches(['$', '+', '-']);
    !t.is_empty()
        && t.chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == '%' || c == ',' || c == 'x')
}

/// Formats a nanosecond latency as microseconds with two decimals.
pub fn us(ns: f64) -> String {
    format!("{:.2}", ns / 1e3)
}

/// Formats a 0..1 fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_detection() {
        assert!(looks_numeric("123"));
        assert!(looks_numeric("1.5"));
        assert!(looks_numeric("$633"));
        assert!(looks_numeric("33%"));
        assert!(looks_numeric("-6.0"));
        assert!(!looks_numeric("Quartz"));
        assert!(!looks_numeric(""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(1500.0), "1.50");
        assert_eq!(pct(0.335), "33.5%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
