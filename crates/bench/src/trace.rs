//! `--trace-out` plumbing for the experiment binaries.
//!
//! Every binary accepts `--trace-out PATH` (or `--trace-out=PATH`);
//! [`crate::run_bin`] parses it here and hands the path to the
//! experiment's `print_ctx`, which writes an ndjson trace alongside the
//! normal stdout rows. Traces are derived from the same single
//! computation the table is printed from — requesting one never reruns
//! the experiment and never changes a byte of stdout — and contain only
//! simulated-time/metric data, so they are bit-identical at any
//! `--jobs` count.

use std::path::{Path, PathBuf};

/// Parses `--trace-out PATH` (or `--trace-out=PATH`) from process args.
pub fn trace_out_from_args() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            if let Some(p) = args.next() {
                return Some(PathBuf::from(p));
            }
        } else if let Some(p) = a.strip_prefix("--trace-out=") {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// Writes `contents` to `path`, creating parent directories as needed.
/// Intentionally silent on stdout (traces must not perturb golden
/// output); an I/O failure panics — a requested trace that cannot be
/// written is an error, not a shrug.
pub fn write(path: &Path, contents: &str) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("trace dir {}: {e}", parent.display()));
        }
    }
    std::fs::write(path, contents).unwrap_or_else(|e| panic!("trace {}: {e}", path.display()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_creates_parents_and_roundtrips() {
        let dir = std::env::temp_dir().join(format!("quartz_trace_test_{}", std::process::id()));
        let path = dir.join("nested/trace.ndjson");
        write(&path, "{\"ev\":\"x\"}\n");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ev\":\"x\"}\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
