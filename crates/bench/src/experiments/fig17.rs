//! Figure 17 — average per-packet latency for *global* scatter, gather,
//! and scatter/gather workloads vs the number of concurrent tasks, on the
//! five simulated architectures of §7.
//!
//! Setup per the paper: 400-byte packets, Poisson sources, ULL switches
//! at the edge/aggregation/rings, CCS in the core, 10 Gb/s server links
//! and 40 Gb/s uplinks, four-switch Quartz rings, randomly placed tasks.

use crate::table::print_table;
use crate::Scale;
use quartz_core::pool::ThreadPool;
use quartz_core::rng::{SliceRandom, StdRng};
use quartz_netsim::sched::SchedulerKind;
use quartz_netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz_netsim::time::SimTime;
use quartz_topology::builders::{
    jellyfish, quartz_in_core, quartz_in_edge, quartz_in_edge_and_core, quartz_in_jellyfish,
    three_tier,
};
use quartz_topology::graph::{Network, NodeId};

/// The simulated architectures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arch {
    /// Figure 15(a): three-tier multi-root tree.
    ThreeTier,
    /// §7's 16-switch random graph.
    Jellyfish,
    /// Figure 15(b): Quartz replacing the core.
    QuartzInCore,
    /// Figure 15(c): Quartz replacing ToR+aggregation.
    QuartzInEdge,
    /// Figure 15(d): both.
    QuartzInEdgeAndCore,
    /// §4.3: random graph of Quartz rings (used by Figure 18).
    QuartzInJellyfish,
}

impl Arch {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Arch::ThreeTier => "Three-tier Multi-root Tree",
            Arch::Jellyfish => "Jellyfish",
            Arch::QuartzInCore => "Quartz in Core",
            Arch::QuartzInEdge => "Quartz in Edge",
            Arch::QuartzInEdgeAndCore => "Quartz in Edge and Core",
            Arch::QuartzInJellyfish => "Quartz in Jellyfish",
        }
    }

    /// Builds the 64-host instance of this architecture.
    pub fn build(&self) -> (Network, Vec<NodeId>) {
        match self {
            // 16 racks × 4 hosts; 4 aggs; 2 cores.
            Arch::ThreeTier => {
                let t = three_tier(8, 2, 4, 2, 10.0, 40.0);
                (t.net, t.hosts)
            }
            Arch::Jellyfish => {
                let j = jellyfish(16, 4, 4, 10.0, 10.0, 71);
                (j.net, j.hosts)
            }
            Arch::QuartzInCore => {
                let q = quartz_in_core(8, 2, 4, 4);
                (q.net, q.hosts)
            }
            Arch::QuartzInEdge => {
                let q = quartz_in_edge(4, 4, 4, 2);
                (q.net, q.hosts)
            }
            Arch::QuartzInEdgeAndCore => {
                let q = quartz_in_edge_and_core(4, 4, 4, 4);
                (q.net, q.hosts)
            }
            Arch::QuartzInJellyfish => {
                let q = quartz_in_jellyfish(4, 4, 4, 4, 71);
                (q.net, q.hosts)
            }
        }
    }
}

/// The three workload shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// One sender streams to many receivers (one-way latency).
    Scatter,
    /// Many senders stream to one receiver (one-way latency).
    Gather,
    /// Scatter with per-packet replies (round-trip latency).
    ScatterGather,
}

impl Workload {
    /// Paper panel name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Scatter => "Scatter",
            Workload::Gather => "Gather",
            Workload::ScatterGather => "Scatter/Gather",
        }
    }
}

/// Partners per task (the root exchanges packets with this many hosts).
pub const PARTNERS: usize = 15;

/// Mean per-flow packet gap, ns (400 B ⇒ 400 Mb/s per flow, ~6 Gb/s per
/// task — enough load to expose congestion without saturating NICs).
pub const MEAN_GAP_NS: f64 = 8_000.0;

/// Adds one task's flows. The task's packets are tagged `tag`.
pub fn add_task(
    sim: &mut Simulator,
    workload: Workload,
    root: NodeId,
    partners: &[NodeId],
    tag: u32,
    stop: SimTime,
) {
    for &p in partners {
        let (src, dst, respond) = match workload {
            Workload::Scatter => (root, p, false),
            Workload::Gather => (p, root, false),
            Workload::ScatterGather => (root, p, true),
        };
        sim.add_flow(
            src,
            dst,
            400,
            FlowKind::Poisson {
                mean_gap_ns: MEAN_GAP_NS,
                stop,
                respond,
            },
            tag,
            SimTime::ZERO,
        );
    }
}

/// Mean per-packet latency (µs) for `tasks` concurrent random tasks.
/// Task roots are distinct (two scatter roots sharing a NIC would just
/// measure self-inflicted host overload, not the network).
pub fn simulate(arch: Arch, workload: Workload, tasks: usize, sim_ms: u64, seed: u64) -> f64 {
    simulate_with_scheduler(
        arch,
        workload,
        tasks,
        sim_ms,
        seed,
        SchedulerKind::default(),
    )
}

/// [`simulate`] with an explicit event-engine choice — the A/B knob of
/// the `scheduler` bench. The engines drain events identically, so for
/// any fixed inputs both kinds return the same latency; only wall time
/// differs.
pub fn simulate_with_scheduler(
    arch: Arch,
    workload: Workload,
    tasks: usize,
    sim_ms: u64,
    seed: u64,
    scheduler: SchedulerKind,
) -> f64 {
    let (net, hosts) = arch.build();
    assert!(tasks <= hosts.len() / 2, "too many tasks for {arch:?}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = Simulator::new(
        net,
        SimConfig {
            seed: seed ^ 0xABCD,
            scheduler,
            ..SimConfig::default()
        },
    );
    let stop = SimTime::from_ms(sim_ms);
    let mut roots = hosts.clone();
    roots.shuffle(&mut rng);
    let roots = &roots[..tasks];
    for &root in roots {
        let mut pool: Vec<NodeId> = hosts.iter().copied().filter(|h| *h != root).collect();
        pool.shuffle(&mut rng);
        add_task(&mut sim, workload, root, &pool[..PARTNERS], 0, stop);
    }
    sim.run(stop + 2_000_000);
    sim.stats().summary(0).mean_us()
}

/// One panel: latency series per architecture.
pub type Panel = Vec<(Arch, Vec<(usize, f64)>)>;

/// Runs all three panels (over one worker per hardware thread).
pub fn run(scale: Scale) -> Vec<(Workload, Panel)> {
    run_with(scale, &ThreadPool::default())
}

/// Runs all three panels over `pool`. Every `(workload, arch, tasks,
/// seed)` cell is one independent simulation with its own seed, so the
/// cells parallelize freely; means fold in seed order on this thread,
/// making the output bit-identical at any worker count.
pub fn run_with(scale: Scale, pool: &ThreadPool) -> Vec<(Workload, Panel)> {
    let (sim_ms, max_sg, max_tasks) = match scale {
        Scale::Paper => (4, 4, 8),
        Scale::Quick => (1, 2, 2),
    };
    let archs = [
        Arch::ThreeTier,
        Arch::Jellyfish,
        Arch::QuartzInCore,
        Arch::QuartzInEdge,
        Arch::QuartzInEdgeAndCore,
    ];
    let seeds: u64 = match scale {
        Scale::Paper => 3,
        Scale::Quick => 1,
    };
    let panels = [
        (Workload::Scatter, max_tasks),
        (Workload::Gather, max_tasks),
        (Workload::ScatterGather, max_sg),
    ];
    let mut units = Vec::new();
    for (w, max) in panels {
        for &a in &archs {
            for t in 1..=max {
                for s in 0..seeds {
                    units.push((w, a, t, s));
                }
            }
        }
    }
    let cells = pool.par_map(units.len(), |i| {
        let (w, a, t, s) = units[i];
        // Mean over independent placements, matching the paper's
        // error-bar methodology; seed expression unchanged.
        simulate(a, w, t, sim_ms, 42 + t as u64 + 1000 * s)
    });
    // Reassemble in the original nesting order — unit order equals the
    // sequential iteration order, so the per-point means sum the same
    // floats in the same order.
    let mut cells = cells.into_iter();
    panels
        .into_iter()
        .map(|(w, max)| {
            let panel: Panel = archs
                .iter()
                .map(|&a| {
                    let series = (1..=max)
                        .map(|t| {
                            let mean = (0..seeds)
                                .map(|_| cells.next().expect("one cell per unit"))
                                .sum::<f64>()
                                / seeds as f64;
                            (t, mean)
                        })
                        .collect();
                    (a, series)
                })
                .collect();
            (w, panel)
        })
        .collect()
}

/// Prints the three Figure 17 panels.
pub fn print(scale: Scale) {
    print_with(scale, &ThreadPool::default());
}

/// Prints the three Figure 17 panels, computed over `pool`.
pub fn print_with(scale: Scale, pool: &ThreadPool) {
    print_ctx(scale, pool, None);
}

/// [`print_with`] plus the shared `--trace-out` hook: the panels run
/// once; the same series feed both the tables and the metrics trace.
pub fn print_ctx(scale: Scale, pool: &ThreadPool, trace: Option<&std::path::Path>) {
    let panels = run_with(scale, pool);
    render(&panels);
    if let Some(path) = trace {
        crate::trace::write(path, &trace_ndjson(&panels));
    }
}

/// The metrics-trace body for [`print_ctx`]: one
/// `fig17.<workload>.<arch>.t<tasks>` latency gauge per point.
fn trace_ndjson(panels: &[(Workload, Panel)]) -> String {
    let mut m = quartz_obs::MetricsRegistry::new();
    for (w, panel) in panels {
        let wkey = w.name().to_ascii_lowercase().replace('-', "_");
        for (a, series) in panel {
            let akey = a.name().to_ascii_lowercase().replace([' ', '+'], "_");
            for (t, us) in series {
                m.inc("fig17.points", 1);
                m.set_gauge(&format!("fig17.{wkey}.{akey}.t{t}"), *us);
            }
        }
    }
    m.to_ndjson()
}

/// Renders the computed panels as the Figure 17 tables.
fn render(panels: &[(Workload, Panel)]) {
    for (w, panel) in panels {
        crate::outln!(
            "\nFigure 17 ({}): average latency per packet (µs) vs number of tasks\n",
            w.name()
        );
        let max = panel[0].1.len();
        let mut headers: Vec<String> = vec!["Architecture".into()];
        headers.extend((1..=max).map(|t| format!("{t} task{}", if t > 1 { "s" } else { "" })));
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = panel
            .iter()
            .map(|(a, series)| {
                let mut cells = vec![a.name().to_string()];
                cells.extend(series.iter().map(|(_, us)| format!("{us:.2}")));
                cells
            })
            .collect();
        print_table(&headers_ref, &rows);
    }
    crate::outln!("\nPaper: the three-tier tree is worst and grows with tasks; Quartz in edge+core roughly halves latency (§7.1).");
}
