//! Extension experiment E1 — protocols vs. topology.
//!
//! §2.1.4 argues that protocol-level fixes (DCTCP and friends) reduce
//! queueing but "are limited by the amount of path diversity in the
//! underlying network topology". This experiment quantifies that with
//! the transport layer: a latency-sensitive RPC probe shares the network
//! with three bulk, congestion-controlled transfers aimed at a server on
//! the probe's destination switch.
//!
//! * **Tree + Reno** — the transfers fill the shared root link's
//!   drop-tail buffer; the probe queues behind megabytes.
//! * **Tree + DCTCP** — ECN keeps the shared queue near the marking
//!   threshold; the probe improves by an order of magnitude, but still
//!   rides a shared, contended link.
//! * **Quartz + Reno** — no shared link exists at all: the probe sees an
//!   idle channel, beating even DCTCP-on-tree *without any protocol
//!   help*. That is the paper's architectural argument.

use crate::table::print_table;
use crate::Scale;
use quartz_core::pool::ThreadPool;
use quartz_netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz_netsim::time::SimTime;
use quartz_netsim::transport::TcpVariant;
use quartz_topology::builders::{prototype_quartz, prototype_two_tier};

/// One configuration's probe results.
#[derive(Clone, Debug)]
pub struct Row {
    /// Configuration label.
    pub config: &'static str,
    /// Probe RPC mean round trip, µs.
    pub probe_mean_us: f64,
    /// Probe p99 round trip, µs.
    pub probe_p99_us: f64,
    /// Packets dropped anywhere in the network.
    pub drops: u64,
}

fn run_one(quartz: bool, variant: TcpVariant, ecn: Option<u64>, rpc_count: u32) -> Row {
    let (net, rpc, bulk_pairs, label) = if quartz {
        let p = prototype_quartz();
        (
            p.net,
            (p.hosts[2], p.hosts[4]),
            vec![
                (p.hosts[0], p.hosts[5]),
                (p.hosts[1], p.hosts[5]),
                (p.hosts[6], p.hosts[5]),
            ],
            match variant {
                TcpVariant::Reno => "Quartz + Reno",
                TcpVariant::Dctcp => "Quartz + DCTCP",
            },
        )
    } else {
        let p = prototype_two_tier();
        (
            p.net,
            (p.hosts[0], p.hosts[2]),
            vec![
                (p.hosts[1], p.hosts[3]),
                (p.hosts[4], p.hosts[3]),
                (p.hosts[5], p.hosts[3]),
            ],
            match variant {
                TcpVariant::Reno => "Two-tier tree + Reno",
                TcpVariant::Dctcp => "Two-tier tree + DCTCP",
            },
        )
    };
    let mut sim = Simulator::new(
        net,
        SimConfig {
            ecn_threshold_bytes: ecn,
            ..SimConfig::default()
        },
    );
    let horizon = SimTime::from_ms(4_000);
    sim.add_flow(
        rpc.0,
        rpc.1,
        100,
        FlowKind::Rpc { count: rpc_count },
        0,
        SimTime::ZERO,
    );
    for &(s, d) in &bulk_pairs {
        sim.add_flow(
            s,
            d,
            1_000,
            FlowKind::Transport {
                // Big enough to stay active for the whole probe run.
                total_bytes: 400_000_000,
                variant,
            },
            1,
            SimTime::ZERO,
        );
    }
    // Run until the probe completes (the bulk transfers are sized to
    // outlast it) rather than simulating the whole horizon.
    let done = sim.run_until_samples(0, rpc_count as usize, horizon);
    assert!(done, "{label}: probe did not finish before the horizon");
    let s = sim.stats().summary(0);
    Row {
        config: label,
        probe_mean_us: s.mean_us(),
        probe_p99_us: s.p99_ns as f64 / 1e3,
        drops: sim.stats().dropped,
    }
}

/// Runs the three §2.1.4 configurations (plus Quartz+DCTCP for
/// completeness), over one worker per hardware thread.
pub fn run(scale: Scale) -> Vec<Row> {
    run_with(scale, &ThreadPool::default())
}

/// Runs the four configurations as independent units over `pool`.
pub fn run_with(scale: Scale, pool: &ThreadPool) -> Vec<Row> {
    // Counts sized so even the slowest configuration (tree + Reno, whose
    // probe RTT averages ~1.7 ms under the bulk transfers) finishes
    // within the horizon.
    let rpc_count = match scale {
        Scale::Paper => 2_000,
        Scale::Quick => 300,
    };
    // DCTCP's K: ~30 kB at 1 Gb/s (the DCTCP paper's guidance scales K
    // with link rate).
    let k = Some(30_000);
    let configs = [
        (false, TcpVariant::Reno, None),
        (false, TcpVariant::Dctcp, k),
        (true, TcpVariant::Reno, None),
        (true, TcpVariant::Dctcp, k),
    ];
    pool.par_map(configs.len(), |i| {
        let (quartz, variant, ecn) = configs[i];
        run_one(quartz, variant, ecn, rpc_count)
    })
}

/// Prints the E1 table.
pub fn print(scale: Scale) {
    print_with(scale, &ThreadPool::default());
}

/// Prints the E1 table, computed over `pool`.
pub fn print_with(scale: Scale, pool: &ThreadPool) {
    print_ctx(scale, pool, None);
}

/// [`print_with`] plus the shared `--trace-out` hook: the
/// configurations run once; the same rows feed both the table and the
/// metrics trace.
pub fn print_ctx(scale: Scale, pool: &ThreadPool, trace: Option<&std::path::Path>) {
    let rows = run_with(scale, pool);
    render(&rows);
    if let Some(path) = trace {
        crate::trace::write(path, &trace_ndjson(&rows));
    }
}

/// The metrics-trace body for [`print_ctx`].
fn trace_ndjson(rows: &[Row]) -> String {
    let mut m = quartz_obs::MetricsRegistry::new();
    m.inc("ext01.rows", rows.len() as u64);
    for r in rows {
        let key = r
            .config
            .to_ascii_lowercase()
            .replace([' ', '+'], "_")
            .replace("__", "_");
        m.set_gauge(&format!("ext01.probe_mean_us.{key}"), r.probe_mean_us);
        m.set_gauge(&format!("ext01.probe_p99_us.{key}"), r.probe_p99_us);
        m.inc(&format!("ext01.drops.{key}"), r.drops);
    }
    m.to_ndjson()
}

/// Renders the computed rows as the E1 table.
fn render(rows: &[Row]) {
    crate::outln!("Extension E1: protocol fixes vs topology (probe RPC under bulk transfers)\n");
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.to_string(),
                format!("{:.1}", r.probe_mean_us),
                format!("{:.1}", r.probe_p99_us),
                r.drops.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "Configuration",
            "Probe mean (µs)",
            "Probe p99 (µs)",
            "Drops",
        ],
        &rows,
    );
    crate::outln!("\n§2.1.4: DCTCP shortens the tree's shared queue by an order of magnitude, but the Quartz mesh removes the shared queue entirely — topology beats protocol.");
}
