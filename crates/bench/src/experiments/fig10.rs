//! Figure 10 — normalized throughput for random permutation, incast, and
//! rack-level shuffle traffic: Quartz (adaptive VLB, §3.4) vs full, ½,
//! and ¼ bisection-bandwidth networks.

use crate::table::print_table;
use crate::Scale;
use quartz_core::pool::ThreadPool;
use quartz_flowsim::fabric::OversubscribedFabric;
use quartz_flowsim::matrix::{incast, rack_shuffle, random_permutation};
use quartz_flowsim::throughput::{adaptive_quartz_throughput, normalized_throughput, DEFAULT_KS};

/// One pattern's bars.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Pattern name.
    pub pattern: &'static str,
    /// Full-bisection network.
    pub full: f64,
    /// Quartz with adaptive VLB (and the chosen detour fraction).
    pub quartz: f64,
    /// Detour fraction the adaptive sweep chose.
    pub quartz_k: f64,
    /// ½-bisection network.
    pub half: f64,
    /// ¼-bisection network.
    pub quarter: f64,
}

/// Runs the three patterns over the four fabrics (over one worker per
/// hardware thread). Paper scale uses the flagship 33 × 32 mesh; quick
/// scale a 9 × 8 one.
pub fn run(scale: Scale) -> Vec<Row> {
    run_with(scale, &ThreadPool::default())
}

/// Names of the three Figure 10 traffic patterns, in panel order.
const PATTERNS: [&str; 3] = ["Random Permutation", "Incast", "Rack-Level Shuffle"];

/// Runs the three patterns over `pool`: one unit per `(pattern, seed)`
/// cell (each cell regenerates its own demand matrix from the seed, so
/// cells share nothing); per-pattern sums fold in seed order, keeping
/// the rows bit-identical at any worker count.
pub fn run_with(scale: Scale, pool: &ThreadPool) -> Vec<Row> {
    let (racks, hpr, seeds) = match scale {
        Scale::Paper => (33usize, 32usize, 5u64),
        Scale::Quick => (9, 8, 2),
    };
    let hosts = racks * hpr;
    let cells = pool.par_map(PATTERNS.len() * seeds as usize, |i| {
        let (pattern, seed) = (i / seeds as usize, (i % seeds as usize) as u64);
        let d = match pattern {
            0 => random_permutation(hosts, seed),
            1 => incast(hosts, 10, seed),
            _ => rack_shuffle(racks, hpr, 4, seed),
        };
        let over = |o: f64| {
            normalized_throughput(
                &OversubscribedFabric {
                    racks,
                    hosts_per_rack: hpr,
                    oversub: o,
                },
                &d,
            )
            .normalized
        };
        // Evaluation order matches the sequential loop: full, half,
        // quarter, then the adaptive sweep.
        let full = over(1.0);
        let half = over(2.0);
        let quarter = over(4.0);
        let (t, k) = adaptive_quartz_throughput(racks, hpr, 1.0, &d, &DEFAULT_KS);
        (full, half, quarter, t.normalized, k)
    });

    PATTERNS
        .iter()
        .enumerate()
        .map(|(p, &name)| {
            let mut acc = Row {
                pattern: name,
                full: 0.0,
                quartz: 0.0,
                quartz_k: 0.0,
                half: 0.0,
                quarter: 0.0,
            };
            for seed in 0..seeds as usize {
                let (full, half, quarter, quartz, k) = cells[p * seeds as usize + seed];
                acc.full += full;
                acc.half += half;
                acc.quarter += quarter;
                acc.quartz += quartz;
                acc.quartz_k += k;
            }
            let n = seeds as f64;
            Row {
                pattern: acc.pattern,
                full: acc.full / n,
                quartz: acc.quartz / n,
                // A negative mean marks seeds where the per-pair adaptive
                // policy won the sweep.
                quartz_k: acc.quartz_k / n,
                half: acc.half / n,
                quarter: acc.quarter / n,
            }
        })
        .collect()
}

/// Prints the Figure 10 bars.
pub fn print(scale: Scale) {
    print_with(scale, &ThreadPool::default());
}

/// Prints the Figure 10 bars, computed over `pool`.
pub fn print_with(scale: Scale, pool: &ThreadPool) {
    print_ctx(scale, pool, None);
}

/// [`print_with`] plus the shared `--trace-out` hook: the patterns run
/// once; the same rows feed both the table and the metrics trace.
pub fn print_ctx(scale: Scale, pool: &ThreadPool, trace: Option<&std::path::Path>) {
    let rows = run_with(scale, pool);
    render(&rows);
    if let Some(path) = trace {
        crate::trace::write(path, &trace_ndjson(&rows));
    }
}

/// The metrics-trace body for [`print_ctx`].
fn trace_ndjson(rows: &[Row]) -> String {
    let mut m = quartz_obs::MetricsRegistry::new();
    m.inc("fig10.rows", rows.len() as u64);
    for r in rows {
        let key = r.pattern.to_ascii_lowercase().replace([' ', '-'], "_");
        m.set_gauge(&format!("fig10.full.{key}"), r.full);
        m.set_gauge(&format!("fig10.quartz.{key}"), r.quartz);
        m.set_gauge(&format!("fig10.quartz_k.{key}"), r.quartz_k);
        m.set_gauge(&format!("fig10.half.{key}"), r.half);
        m.set_gauge(&format!("fig10.quarter.{key}"), r.quarter);
    }
    m.to_ndjson()
}

/// Renders the computed rows as the Figure 10 table.
fn render(rows: &[Row]) {
    crate::outln!("Figure 10: normalized throughput (1.0 = every server at full rate)\n");
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.pattern.to_string(),
                format!("{:.2}", r.full),
                if r.quartz_k < 0.0 {
                    format!("{:.2} (per-pair k)", r.quartz)
                } else {
                    format!("{:.2} (k={:.1})", r.quartz, r.quartz_k)
                },
                format!("{:.2}", r.half),
                format!("{:.2}", r.quarter),
            ]
        })
        .collect();
    print_table(
        &[
            "Traffic pattern",
            "Full bisection",
            "Quartz (adaptive VLB)",
            "1/2 bisection",
            "1/4 bisection",
        ],
        &rows,
    );
    crate::outln!("\nPaper: Quartz ≈0.9 on permutation/incast, ≈0.75 on shuffle — above 1/2 bisection, below full (§5.1).");
}
