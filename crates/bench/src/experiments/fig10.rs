//! Figure 10 — normalized throughput for random permutation, incast, and
//! rack-level shuffle traffic: Quartz (adaptive VLB, §3.4) vs full, ½,
//! and ¼ bisection-bandwidth networks.

use crate::table::print_table;
use crate::Scale;
use quartz_flowsim::fabric::OversubscribedFabric;
use quartz_flowsim::matrix::{incast, rack_shuffle, random_permutation};
use quartz_flowsim::throughput::{adaptive_quartz_throughput, normalized_throughput, DEFAULT_KS};

/// One pattern's bars.
#[derive(Clone, Debug)]
pub struct Row {
    /// Pattern name.
    pub pattern: &'static str,
    /// Full-bisection network.
    pub full: f64,
    /// Quartz with adaptive VLB (and the chosen detour fraction).
    pub quartz: f64,
    /// Detour fraction the adaptive sweep chose.
    pub quartz_k: f64,
    /// ½-bisection network.
    pub half: f64,
    /// ¼-bisection network.
    pub quarter: f64,
}

/// Runs the three patterns over the four fabrics. Paper scale uses the
/// flagship 33 × 32 mesh; quick scale a 9 × 8 one.
pub fn run(scale: Scale) -> Vec<Row> {
    let (racks, hpr, seeds) = match scale {
        Scale::Paper => (33usize, 32usize, 5u64),
        Scale::Quick => (9, 8, 2),
    };
    let hosts = racks * hpr;
    type Generator = Box<dyn Fn(u64) -> Vec<(usize, usize)>>;
    let patterns: Vec<(&'static str, Generator)> = vec![
        (
            "Random Permutation",
            Box::new(move |s| random_permutation(hosts, s)),
        ),
        ("Incast", Box::new(move |s| incast(hosts, 10, s))),
        (
            "Rack-Level Shuffle",
            Box::new(move |s| rack_shuffle(racks, hpr, 4, s)),
        ),
    ];

    patterns
        .into_iter()
        .map(|(name, generate)| {
            let mut acc = Row {
                pattern: name,
                full: 0.0,
                quartz: 0.0,
                quartz_k: 0.0,
                half: 0.0,
                quarter: 0.0,
            };
            for seed in 0..seeds {
                let d = generate(seed);
                let over = |o: f64| {
                    normalized_throughput(
                        &OversubscribedFabric {
                            racks,
                            hosts_per_rack: hpr,
                            oversub: o,
                        },
                        &d,
                    )
                    .normalized
                };
                acc.full += over(1.0);
                acc.half += over(2.0);
                acc.quarter += over(4.0);
                let (t, k) = adaptive_quartz_throughput(racks, hpr, 1.0, &d, &DEFAULT_KS);
                acc.quartz += t.normalized;
                acc.quartz_k += k;
            }
            let n = seeds as f64;
            Row {
                pattern: acc.pattern,
                full: acc.full / n,
                quartz: acc.quartz / n,
                // A negative mean marks seeds where the per-pair adaptive
                // policy won the sweep.
                quartz_k: acc.quartz_k / n,
                half: acc.half / n,
                quarter: acc.quarter / n,
            }
        })
        .collect()
}

/// Prints the Figure 10 bars.
pub fn print(scale: Scale) {
    println!("Figure 10: normalized throughput (1.0 = every server at full rate)\n");
    let rows: Vec<Vec<String>> = run(scale)
        .into_iter()
        .map(|r| {
            vec![
                r.pattern.to_string(),
                format!("{:.2}", r.full),
                if r.quartz_k < 0.0 {
                    format!("{:.2} (per-pair k)", r.quartz)
                } else {
                    format!("{:.2} (k={:.1})", r.quartz, r.quartz_k)
                },
                format!("{:.2}", r.half),
                format!("{:.2}", r.quarter),
            ]
        })
        .collect();
    print_table(
        &[
            "Traffic pattern",
            "Full bisection",
            "Quartz (adaptive VLB)",
            "1/2 bisection",
            "1/4 bisection",
        ],
        &rows,
    );
    println!("\nPaper: Quartz ≈0.9 on permutation/incast, ≈0.75 on shuffle — above 1/2 bisection, below full (§5.1).");
}
