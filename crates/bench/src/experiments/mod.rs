//! One module per table/figure of the paper's evaluation.
//!
//! Each module exposes `run(scale) -> Vec<Row>`-style structured results
//! plus a `print(scale)` that renders the paper-style table; the binaries
//! in `src/bin` are one-line wrappers around `print`.

pub mod ext01;
pub mod ext02;
pub mod ext03;
pub mod ext04;
pub mod fig01;
pub mod fig05;
pub mod fig06;
pub mod fig10;
pub mod fig14;
pub mod fig17;
pub mod fig18;
pub mod fig20;
pub mod table02;
pub mod table08;
pub mod table09;
pub mod table16;
