//! Figure 1 — backbone DWDM per-bit, per-km cost improvements over time.

use crate::table::print_table;
use crate::Scale;
use quartz_cost::trend::{dwdm_cost_index, DWDM_TREND};

/// One point of the trend: `(year, generation, relative cost, fitted)`.
pub type Row = (u32, &'static str, f64, f64);

/// The digitized series with the exponential fit alongside.
pub fn run(_scale: Scale) -> Vec<Row> {
    DWDM_TREND
        .iter()
        .map(|&(year, cost, label)| (year, label, cost, dwdm_cost_index(year)))
        .collect()
}

/// Pass-through for the shared `--jobs` plumbing: the series is a
/// static table, so the pool is unused.
pub fn run_with(scale: Scale, _pool: &quartz_core::ThreadPool) -> Vec<Row> {
    run(scale)
}

/// Pass-through for the shared `--jobs` plumbing (see [`run_with`]).
pub fn print_with(scale: Scale, _pool: &quartz_core::ThreadPool) {
    print(scale);
}

/// [`print_with`] plus the shared `--trace-out` hook: also writes the
/// printed series as a metrics trace (one gauge pair per year).
pub fn print_ctx(scale: Scale, pool: &quartz_core::ThreadPool, trace: Option<&std::path::Path>) {
    print_with(scale, pool);
    if let Some(path) = trace {
        crate::trace::write(path, &trace_ndjson(&run(scale)));
    }
}

/// The metrics-trace body for [`print_ctx`].
fn trace_ndjson(rows: &[Row]) -> String {
    let mut m = quartz_obs::MetricsRegistry::new();
    m.inc("fig01.rows", rows.len() as u64);
    for (year, _label, cost, fit) in rows {
        m.set_gauge(&format!("fig01.cost.y{year}"), *cost);
        m.set_gauge(&format!("fig01.fit.y{year}"), *fit);
    }
    m.to_ndjson()
}

/// Prints the Figure 1 series.
pub fn print(scale: Scale) {
    crate::outln!("Figure 1: backbone DWDM per-bit, per-km relative cost (1993 = 1.0)\n");
    let rows: Vec<Vec<String>> = run(scale)
        .into_iter()
        .map(|(y, label, c, f)| {
            vec![
                y.to_string(),
                label.to_string(),
                format!("{c:.4}"),
                format!("{f:.4}"),
            ]
        })
        .collect();
    print_table(
        &["Year", "Generation", "Relative cost", "Exponential fit"],
        &rows,
    );
    let annual = quartz_cost::trend::annual_decline_factor();
    crate::outln!(
        "\nFitted decline: ×{annual:.2} per year (−{:.0}%/yr) — \"Quartz will only become more cost-competitive over time\" (§2.2).",
        (1.0 - annual) * 100.0
    );
}
