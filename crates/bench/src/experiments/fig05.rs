//! Figure 5 — wavelengths required vs ring size: greedy vs optimal.
//!
//! The paper solves an ILP for the optimum; our exact branch-and-bound
//! computes the same minimum where it can prove it within the node
//! budget, and otherwise the row reports the certified `[lower bound,
//! greedy]` interval (even ring sizes ≥ 10 have expensive infeasibility
//! proofs; odd sizes all solve instantly and match the known closed form
//! `(M² − 1)/8`).

use crate::table::print_table;
use crate::Scale;
use quartz_core::channel::bounds::load_lower_bound;
use quartz_core::channel::exact::{solve, ExactStatus};
use quartz_core::channel::greedy;
use quartz_core::pool::ThreadPool;

/// One ring size's result.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Ring size `M`.
    pub m: usize,
    /// Greedy heuristic wavelength count (best start offset).
    pub greedy: usize,
    /// Exact optimum when proven.
    pub optimal: Option<usize>,
    /// Certified lower bound.
    pub lower_bound: usize,
}

/// Sweeps ring sizes 2..=41 (over one worker per hardware thread).
pub fn run(scale: Scale) -> Vec<Row> {
    run_with(scale, &ThreadPool::default())
}

/// Sweeps ring sizes over `pool`: each size's greedy + exact solve is
/// one independent unit (the even sizes' branch-and-bound infeasibility
/// proofs dominate, so they spread across workers).
pub fn run_with(scale: Scale, pool: &ThreadPool) -> Vec<Row> {
    let (max_m, exact_horizon, budget) = match scale {
        // Attempt the exact solver at every size: odd rings prove their
        // optimum quickly at any size; even rings ≥ 10 usually exhaust
        // the budget on the infeasibility proof and fall back to the
        // certified interval.
        Scale::Paper => (41, 41, 30_000_000u64),
        Scale::Quick => (12, 9, 2_000_000u64),
    };
    pool.par_map(max_m - 1, |i| {
        let m = i + 2;
        let g = greedy::wavelengths_required(m);
        let lb = load_lower_bound(m);
        let optimal = if m <= exact_horizon {
            let r = solve(m, budget);
            (r.status == ExactStatus::Optimal).then_some(r.channels)
        } else if g == lb {
            // Greedy meeting the load bound is a proof of optimality
            // at any size.
            Some(g)
        } else {
            None
        };
        Row {
            m,
            greedy: g,
            optimal,
            lower_bound: lb,
        }
    })
}

/// The largest ring a 160-channel fiber supports — the paper's "maximum
/// ring size is 35".
pub fn max_ring_size(rows: &[Row]) -> usize {
    rows.iter()
        .filter(|r| r.greedy <= 160)
        .map(|r| r.m)
        .max()
        .unwrap_or(0)
}

/// Prints the Figure 5 series.
pub fn print(scale: Scale) {
    print_with(scale, &ThreadPool::default());
}

/// Prints the Figure 5 series, computed over `pool`.
pub fn print_with(scale: Scale, pool: &ThreadPool) {
    print_ctx(scale, pool, None);
}

/// [`print_with`] plus the shared `--trace-out` hook: the sweep runs
/// once; the same rows feed both the table and the metrics trace.
pub fn print_ctx(scale: Scale, pool: &ThreadPool, trace: Option<&std::path::Path>) {
    let rows = run_with(scale, pool);
    render(&rows);
    if let Some(path) = trace {
        crate::trace::write(path, &trace_ndjson(&rows));
    }
}

/// The metrics-trace body for [`print_ctx`].
fn trace_ndjson(rows: &[Row]) -> String {
    let mut m = quartz_obs::MetricsRegistry::new();
    m.inc("fig05.rows", rows.len() as u64);
    m.inc(
        "fig05.optimal_proven",
        rows.iter().filter(|r| r.optimal.is_some()).count() as u64,
    );
    m.set_gauge("fig05.max_ring_size", max_ring_size(rows) as f64);
    for r in rows {
        m.set_gauge(&format!("fig05.greedy.m{:02}", r.m), r.greedy as f64);
        m.set_gauge(
            &format!("fig05.lower_bound.m{:02}", r.m),
            r.lower_bound as f64,
        );
        if let Some(o) = r.optimal {
            m.set_gauge(&format!("fig05.optimal.m{:02}", r.m), o as f64);
        }
    }
    m.to_ndjson()
}

/// Renders the computed rows as the Figure 5 table.
fn render(rows: &[Row]) {
    crate::outln!("Figure 5: wavelengths required vs ring size (greedy vs optimal)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.m.to_string(),
                r.greedy.to_string(),
                r.optimal
                    .map(|o| o.to_string())
                    .unwrap_or_else(|| format!("[{}..{}]", r.lower_bound, r.greedy)),
                r.lower_bound.to_string(),
            ]
        })
        .collect();
    print_table(
        &["Ring size", "Greedy", "Optimal (exact)", "Load bound"],
        &table,
    );
    crate::outln!(
        "\nMax ring size within 160 fiber channels: {} (paper: 35).",
        max_ring_size(rows)
    );
    let worst = rows
        .iter()
        .filter_map(|r| r.optimal.map(|o| (r.m, r.greedy as f64 / o as f64)))
        .max_by(|a, b| a.1.total_cmp(&b.1));
    if let Some((m, ratio)) = worst {
        crate::outln!(
            "Greedy vs proven optimum: worst ratio {ratio:.3}x at M = {m} — \"our greedy heuristic performs nearly as well as the optimal solution\" (§3.1.1)."
        );
    }
}
