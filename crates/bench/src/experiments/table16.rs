//! Table 16 — specifications of the switches used in the simulations.

use crate::table::print_table;
use crate::Scale;
use quartz_netsim::switch::{SwitchSpec, ARISTA_7150S, CISCO_NEXUS_7000};

/// The two simulated devices.
pub fn run(_scale: Scale) -> Vec<SwitchSpec> {
    vec![CISCO_NEXUS_7000, ARISTA_7150S]
}

/// Pass-through for the shared `--jobs` plumbing: the table is static,
/// so the pool is unused.
pub fn run_with(scale: Scale, _pool: &quartz_core::ThreadPool) -> Vec<SwitchSpec> {
    run(scale)
}

/// Pass-through for the shared `--jobs` plumbing (see [`run_with`]).
pub fn print_with(scale: Scale, _pool: &quartz_core::ThreadPool) {
    print(scale);
}

/// [`print_with`] plus the shared `--trace-out` hook: also writes the
/// switch specifications as a metrics trace.
pub fn print_ctx(scale: Scale, pool: &quartz_core::ThreadPool, trace: Option<&std::path::Path>) {
    print_with(scale, pool);
    if let Some(path) = trace {
        crate::trace::write(path, &trace_ndjson(&run(scale)));
    }
}

/// The metrics-trace body for [`print_ctx`].
fn trace_ndjson(rows: &[SwitchSpec]) -> String {
    let mut m = quartz_obs::MetricsRegistry::new();
    m.inc("table16.rows", rows.len() as u64);
    for s in rows {
        let key = s.name.to_ascii_lowercase().replace(' ', "_");
        m.set_gauge(&format!("table16.latency_ns.{key}"), s.latency_ns as f64);
        m.set_gauge(&format!("table16.ports_10g.{key}"), s.ports_10g as f64);
        m.inc(
            &format!("table16.cut_through.{key}"),
            u64::from(s.cut_through),
        );
    }
    m.to_ndjson()
}

/// Prints Table 16.
pub fn print(scale: Scale) {
    crate::outln!("Table 16: specifications of switches used in the simulations\n");
    let rows: Vec<Vec<String>> = run(scale)
        .into_iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                if s.latency_ns >= 1000 {
                    format!("{} us", s.latency_ns / 1000)
                } else {
                    format!("{} ns", s.latency_ns)
                },
                format!("{} 10Gbps or {} 40Gbps", s.ports_10g, s.ports_40g),
                if s.cut_through {
                    "cut-through".into()
                } else {
                    "store-and-forward".into()
                },
            ]
        })
        .collect();
    print_table(&["Switch", "Latency", "Port count", "Architecture"], &rows);
}
