//! Table 16 — specifications of the switches used in the simulations.

use crate::table::print_table;
use crate::Scale;
use quartz_netsim::switch::{SwitchSpec, ARISTA_7150S, CISCO_NEXUS_7000};

/// The two simulated devices.
pub fn run(_scale: Scale) -> Vec<SwitchSpec> {
    vec![CISCO_NEXUS_7000, ARISTA_7150S]
}

/// Pass-through for the shared `--jobs` plumbing: the table is static,
/// so the pool is unused.
pub fn run_with(scale: Scale, _pool: &quartz_core::ThreadPool) -> Vec<SwitchSpec> {
    run(scale)
}

/// Pass-through for the shared `--jobs` plumbing (see [`run_with`]).
pub fn print_with(scale: Scale, _pool: &quartz_core::ThreadPool) {
    print(scale);
}

/// Prints Table 16.
pub fn print(scale: Scale) {
    println!("Table 16: specifications of switches used in the simulations\n");
    let rows: Vec<Vec<String>> = run(scale)
        .into_iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                if s.latency_ns >= 1000 {
                    format!("{} us", s.latency_ns / 1000)
                } else {
                    format!("{} ns", s.latency_ns)
                },
                format!("{} 10Gbps or {} 40Gbps", s.ports_10g, s.ports_40g),
                if s.cut_through {
                    "cut-through".into()
                } else {
                    "store-and-forward".into()
                },
            ]
        })
        .collect();
    print_table(&["Switch", "Latency", "Port count", "Architecture"], &rows);
}
