//! Figure 18 — average latency of a *localized* task (scatter, gather,
//! scatter/gather between servers in nearby racks) while additional
//! randomly-placed tasks generate cross-traffic.
//!
//! "There is only one local task per experiment; the remaining tasks
//! have randomly distributed senders and receivers … the local task
//! performs scatter, gather operations to fewer targets than the
//! non-local tasks." (§7.1)

use crate::experiments::fig17::{add_task, Arch, Workload, MEAN_GAP_NS, PARTNERS};
use crate::table::print_table;
use crate::Scale;
use quartz_core::pool::ThreadPool;
use quartz_core::rng::{SliceRandom, StdRng};
use quartz_netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz_netsim::time::SimTime;
use quartz_topology::graph::{Network, NodeId};

/// Local-task partner count ("fewer targets than the non-local tasks").
pub const LOCAL_PARTNERS: usize = 6;

/// Hosts eligible for the local task: servers in "nearby racks".
fn local_pool(arch: Arch, net: &Network, hosts: &[NodeId]) -> Vec<NodeId> {
    match arch {
        // Racks 0 and 1 share an aggregation switch in our three-tier
        // builder; jellyfish has no locality so take the first switches'
        // hosts (the paper's point is exactly that this doesn't help).
        Arch::ThreeTier | Arch::Jellyfish => hosts
            .iter()
            .copied()
            .filter(|&h| matches!(net.node(h).rack, Some(0) | Some(1)))
            .collect(),
        // Quartz architectures: the hosts of ring 0 (racks 0..4).
        _ => hosts
            .iter()
            .copied()
            .filter(|&h| matches!(net.node(h).rack, Some(r) if r < 4))
            .collect(),
    }
}

/// Mean local-task latency (µs) with `tasks` total tasks (1 local +
/// `tasks − 1` global cross-traffic tasks).
pub fn simulate(arch: Arch, workload: Workload, tasks: usize, sim_ms: u64, seed: u64) -> f64 {
    assert!(tasks >= 1);
    let (net, hosts) = arch.build();
    let mut rng = StdRng::seed_from_u64(seed);
    let stop = SimTime::from_ms(sim_ms);
    let pool = local_pool(arch, &net, &hosts);
    assert!(
        pool.len() > LOCAL_PARTNERS,
        "{arch:?}: local pool too small ({})",
        pool.len()
    );
    let mut sim = Simulator::new(
        net,
        SimConfig {
            seed: seed ^ 0x18,
            ..SimConfig::default()
        },
    );

    // The local task, tagged 0.
    let mut local = pool.clone();
    local.shuffle(&mut rng);
    let local_root = local[0];
    add_task(
        &mut sim,
        workload,
        local_root,
        &local[1..=LOCAL_PARTNERS],
        0,
        stop,
    );

    // Cross-traffic tasks, tagged 1, with roots distinct from each other
    // and from the local root (a shared root would measure NIC overload,
    // not the network).
    let mut cross_roots: Vec<_> = hosts.iter().copied().filter(|&h| h != local_root).collect();
    cross_roots.shuffle(&mut rng);
    for t in 1..tasks {
        let root = cross_roots[t - 1];
        let mut all: Vec<_> = hosts.iter().copied().filter(|&h| h != root).collect();
        all.shuffle(&mut rng);
        let partners = &all[..PARTNERS];
        for &p in partners {
            let (src, dst, respond) = match workload {
                Workload::Scatter => (root, p, false),
                Workload::Gather => (p, root, false),
                Workload::ScatterGather => (root, p, true),
            };
            sim.add_flow(
                src,
                dst,
                400,
                FlowKind::Poisson {
                    mean_gap_ns: MEAN_GAP_NS,
                    stop,
                    respond,
                },
                1,
                SimTime::ZERO,
            );
        }
    }

    sim.run(stop + 2_000_000);
    sim.stats().summary(0).mean_us()
}

/// One panel: per-architecture series of `(total tasks, local-task µs)`.
pub type Panel = Vec<(Arch, Vec<(usize, f64)>)>;

/// Runs all three localized panels for the Figure 18 architecture set
/// (over one worker per hardware thread).
pub fn run(scale: Scale) -> Vec<(Workload, Panel)> {
    run_with(scale, &ThreadPool::default())
}

/// Runs all three localized panels over `pool`; every `(workload,
/// arch, tasks)` point is an independent seeded simulation, so output
/// is bit-identical at any worker count.
pub fn run_with(scale: Scale, pool: &ThreadPool) -> Vec<(Workload, Panel)> {
    let (sim_ms, max_sg, max_tasks) = match scale {
        Scale::Paper => (4, 5, 6),
        Scale::Quick => (1, 2, 2),
    };
    let archs = [
        Arch::ThreeTier,
        Arch::Jellyfish,
        Arch::QuartzInJellyfish,
        Arch::QuartzInEdgeAndCore,
    ];
    let panels = [
        (Workload::Scatter, max_tasks),
        (Workload::Gather, max_tasks),
        (Workload::ScatterGather, max_sg),
    ];
    let mut units = Vec::new();
    for (w, max) in panels {
        for &a in &archs {
            for t in 1..=max {
                units.push((w, a, t));
            }
        }
    }
    let cells = pool.par_map(units.len(), |i| {
        let (w, a, t) = units[i];
        simulate(a, w, t, sim_ms, 180 + t as u64)
    });
    let mut cells = cells.into_iter();
    panels
        .into_iter()
        .map(|(w, max)| {
            let panel: Panel = archs
                .iter()
                .map(|&a| {
                    let series = (1..=max)
                        .map(|t| (t, cells.next().expect("one cell per unit")))
                        .collect();
                    (a, series)
                })
                .collect();
            (w, panel)
        })
        .collect()
}

/// Prints the three Figure 18 panels.
pub fn print(scale: Scale) {
    print_with(scale, &ThreadPool::default());
}

/// Prints the three Figure 18 panels, computed over `pool`.
pub fn print_with(scale: Scale, pool: &ThreadPool) {
    print_ctx(scale, pool, None);
}

/// [`print_with`] plus the shared `--trace-out` hook: the panels run
/// once; the same series feed both the tables and the metrics trace.
pub fn print_ctx(scale: Scale, pool: &ThreadPool, trace: Option<&std::path::Path>) {
    let panels = run_with(scale, pool);
    render(&panels);
    if let Some(path) = trace {
        crate::trace::write(path, &trace_ndjson(&panels));
    }
}

/// The metrics-trace body for [`print_ctx`]: one
/// `fig18.<workload>.<arch>.t<tasks>` latency gauge per point.
fn trace_ndjson(panels: &[(Workload, Panel)]) -> String {
    let mut m = quartz_obs::MetricsRegistry::new();
    for (w, panel) in panels {
        let wkey = w.name().to_ascii_lowercase().replace('-', "_");
        for (a, series) in panel {
            let akey = a.name().to_ascii_lowercase().replace([' ', '+'], "_");
            for (t, us) in series {
                m.inc("fig18.points", 1);
                m.set_gauge(&format!("fig18.{wkey}.{akey}.t{t}"), *us);
            }
        }
    }
    m.to_ndjson()
}

/// Renders the computed panels as the Figure 18 tables.
fn render(panels: &[(Workload, Panel)]) {
    for (w, panel) in panels {
        crate::outln!(
            "\nFigure 18 (Localized {}): local-task latency per packet (µs) vs total tasks\n",
            w.name()
        );
        let max = panel[0].1.len();
        let mut headers: Vec<String> = vec!["Architecture".into()];
        headers.extend((1..=max).map(|t| format!("{t} task{}", if t > 1 { "s" } else { "" })));
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = panel
            .iter()
            .map(|(a, series)| {
                let mut cells = vec![a.name().to_string()];
                cells.extend(series.iter().map(|(_, us)| format!("{us:.2}")));
                cells
            })
            .collect();
        print_table(&headers_ref, &rows);
    }
    crate::outln!("\nPaper: Jellyfish cannot exploit locality (highest); Quartz rings keep local traffic inside the ring, mostly unaffected by cross-traffic (§7.1).");
}
