//! Extension experiment E4 — the workload subsystem end to end.
//!
//! §2.1 of the paper motivates Quartz with partition/aggregate services:
//! heavy-tailed flow mixes, fan-in bursts, and bulk-synchronous jobs,
//! all under commodity TCP. E4 drives the `quartz-workload` subsystem's
//! four traffic kinds — a replayed flow trace, an open-loop websearch
//! mix, a synchronized incast storm, and ring/tree all-reduces — over
//! the Quartz-in-edge-and-core fabric under both Reno and DCTCP, and
//! reports completion counts, the worst per-size-bucket tail FCT, and
//! collective completion time.
//!
//! One unit per `(workload, transport)` pair over the shared pool;
//! results fold in unit order, bit-identical at any worker count.

use crate::table::print_table;
use crate::Scale;
use quartz_core::pool::{unit_seed, ThreadPool};
use quartz_netsim::time::SimTime;
use quartz_netsim::transport::TcpVariant;
use quartz_topology::builders::quartz_in_edge_and_core;
use quartz_topology::graph::{Network, NodeId};
use quartz_workload::{
    run_workload, variant_name, CollectiveAlgo, Trace, WorkloadConfig, WorkloadReport,
    WorkloadSpec, HADOOP,
};

/// One measurement: a workload under one transport.
#[derive(Clone, Debug)]
pub struct Row {
    /// Spec name (`trace`, `hadoop`, `incast:8`, `allreduce:ring`, …).
    pub spec: String,
    /// Transport name (`reno` / `dctcp`).
    pub transport: &'static str,
    /// Flows offered.
    pub flows: usize,
    /// Flows completed before the horizon.
    pub completed: usize,
    /// Worst per-size-bucket p99 FCT, µs.
    pub worst_p99_us: f64,
    /// Worst per-size-bucket p99 slowdown (FCT / ideal serialization).
    pub worst_p99_slowdown: f64,
    /// Collective completion time, µs (all-reduce rows only).
    pub collective_us: Option<f64>,
}

/// The E4 fabric: 2 rings × 3 switches × 2 hosts plus a 2-switch core.
fn fabric() -> (Network, Vec<NodeId>) {
    let c = quartz_in_edge_and_core(2, 3, 2, 2);
    (c.net, c.hosts)
}

/// A small deterministic shuffle-like trace over `hosts` endpoints:
/// mice between neighbors plus a few rack-crossing elephants.
fn demo_trace(hosts: usize) -> Trace {
    let mut text = String::new();
    for i in 0..40_u64 {
        let src = i as usize % hosts;
        let dst = (i as usize + 1 + (i as usize % (hosts - 1))) % hosts;
        let dst = if dst == src { (dst + 1) % hosts } else { dst };
        let bytes = if i % 8 == 7 { 400_000 } else { 3_000 + i * 157 };
        text.push_str(&format!(
            "{{\"src\":{src},\"dst\":{dst},\"bytes\":{bytes},\"start_ns\":{}}}\n",
            i * 2_500
        ));
    }
    Trace::parse(&text, hosts).expect("demo trace is valid")
}

/// The workload list for one scale: `(spec, arrival window)`.
fn specs(scale: Scale, hosts: usize) -> Vec<(WorkloadSpec, SimTime)> {
    let (load, incast_bytes, gradient) = match scale {
        Scale::Paper => (0.5, 60_000, 200_000),
        Scale::Quick => (0.4, 30_000, 80_000),
    };
    let window = match scale {
        Scale::Paper => SimTime::from_ms(4),
        Scale::Quick => SimTime::from_ms(2),
    };
    vec![
        (WorkloadSpec::Trace(demo_trace(hosts)), window),
        (WorkloadSpec::Dist { dist: HADOOP, load }, window),
        (
            WorkloadSpec::Incast {
                fanin: 8,
                bytes: incast_bytes,
                jitter_ns: 0,
            },
            window,
        ),
        (
            WorkloadSpec::AllReduce {
                algo: CollectiveAlgo::Ring,
                ranks: 0,
                bytes: gradient,
            },
            window,
        ),
        (
            WorkloadSpec::AllReduce {
                algo: CollectiveAlgo::Tree,
                ranks: 0,
                bytes: gradient,
            },
            window,
        ),
    ]
}

fn row_of(report: &WorkloadReport) -> Row {
    let worst_p99_us = report
        .buckets
        .iter()
        .map(|b| b.p99_fct_us)
        .fold(0.0, f64::max);
    let worst_p99_slowdown = report
        .buckets
        .iter()
        .map(|b| b.p99_slowdown)
        .fold(0.0, f64::max);
    Row {
        spec: report.spec.clone(),
        transport: report.transport,
        flows: report.flows,
        completed: report.completed,
        worst_p99_us,
        worst_p99_slowdown,
        collective_us: report.collective.as_ref().map(|c| c.total_ns as f64 / 1e3),
    }
}

/// Runs E4 over one worker per hardware thread.
pub fn run(scale: Scale) -> Vec<Row> {
    run_with(scale, &ThreadPool::default())
}

/// Runs E4 over `pool`: one unit per `(workload, transport)` pair,
/// re-seeded with [`unit_seed`]; rows fold in unit order.
pub fn run_with(scale: Scale, pool: &ThreadPool) -> Vec<Row> {
    let hosts = fabric().1.len();
    let mut units = Vec::new();
    for (w, (spec, window)) in specs(scale, hosts).into_iter().enumerate() {
        for variant in [TcpVariant::Reno, TcpVariant::Dctcp] {
            // Both transports of a workload share one seed, so their
            // arrival patterns are identical and the row pair is a pure
            // transport comparison.
            units.push((spec.clone(), window, variant, w));
        }
    }
    pool.par_map(units.len(), |i| {
        let (spec, window, variant, w) = units[i].clone();
        let mut cfg = WorkloadConfig::new(spec, variant, unit_seed(0xE400, w as u64));
        cfg.window = window;
        cfg.horizon = SimTime::from_ms(80);
        let (net, hosts) = fabric();
        let report = run_workload(net, &hosts, &cfg).expect("E4 workloads fit the fabric");
        row_of(&report)
    })
}

/// Prints the E4 table.
pub fn print(scale: Scale) {
    print_with(scale, &ThreadPool::default());
}

/// Prints the E4 table, computed over `pool`.
pub fn print_with(scale: Scale, pool: &ThreadPool) {
    print_ctx(scale, pool, None);
}

/// [`print_with`] plus the shared `--trace-out` hook.
pub fn print_ctx(scale: Scale, pool: &ThreadPool, trace: Option<&std::path::Path>) {
    let rows = run_with(scale, pool);
    render(&rows);
    if let Some(path) = trace {
        crate::trace::write(path, &trace_ndjson(&rows));
    }
}

/// The metrics-trace body for [`print_ctx`].
fn trace_ndjson(rows: &[Row]) -> String {
    let mut m = quartz_obs::MetricsRegistry::new();
    m.inc("ext04.rows", rows.len() as u64);
    for r in rows {
        let key = format!("{}.{}", r.spec.replace(':', "_"), r.transport);
        m.inc(&format!("ext04.flows.{key}"), r.flows as u64);
        m.inc(&format!("ext04.completed.{key}"), r.completed as u64);
        m.set_gauge(&format!("ext04.worst_p99_us.{key}"), r.worst_p99_us);
        if let Some(c) = r.collective_us {
            m.set_gauge(&format!("ext04.collective_us.{key}"), c);
        }
    }
    m.to_ndjson()
}

/// Renders the computed rows as the E4 table.
fn render(rows: &[Row]) {
    crate::outln!(
        "Extension E4: the workload subsystem — trace replay, heavy-tail mix, incast, all-reduce — under Reno and DCTCP\n"
    );
    let headers = [
        "Workload",
        "Transport",
        "Flows",
        "Done",
        "Worst p99 FCT (µs)",
        "Worst p99 slowdown",
        "All-reduce (µs)",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.spec.clone(),
                r.transport.to_string(),
                r.flows.to_string(),
                r.completed.to_string(),
                format!("{:.1}", r.worst_p99_us),
                format!("{:.2}", r.worst_p99_slowdown),
                r.collective_us
                    .map_or_else(|| "—".to_string(), |c| format!("{c:.1}")),
            ]
        })
        .collect();
    print_table(&headers, &table);
    crate::outln!("\nDCTCP's ECN-proportional backoff tames the incast and heavy-tail queueing tails that Reno's loss-driven AIMD lets grow; the all-reduce rows show the ring's many balanced steps versus the tree's fewer, fan-in-concentrated ones. ({} = transport comparison, per-bucket tails from quartz-workload.)", variant_name(TcpVariant::Dctcp));
}
