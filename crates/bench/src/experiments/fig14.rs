//! Figure 14 — impact of cross-traffic on RPC latency: the §6 prototype,
//! reproduced in simulation.
//!
//! The hardware experiment: a "Hello World" Thrift RPC between servers
//! on different ToR switches, plus bursty Nuttcp cross-traffic ("20
//! packet bursts … separated by idle intervals" tuned to a target
//! bandwidth) from three servers toward a server that shares the RPC
//! destination's switch. Measured on the Quartz wiring and on the same
//! switches rewired as a two-tier tree. The paper reports *relative*
//! latency (normalized to the zero-cross-traffic baseline), which is
//! exactly what the simulation preserves: the effect is queueing
//! interference at shared 1 Gb/s ports.

use crate::Scale;
use quartz_core::pool::ThreadPool;
use quartz_netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz_netsim::switch::{LatencyModel, SwitchSpec};
use quartz_netsim::time::SimTime;
use quartz_topology::builders::{prototype_quartz, prototype_two_tier};

/// One sweep point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Per-source cross-traffic bandwidth, Mb/s.
    pub cross_mbps: f64,
    /// Two-tier tree RPC latency, normalized to its zero-cross baseline.
    pub tree: f64,
    /// Quartz RPC latency, normalized to its zero-cross baseline.
    pub quartz: f64,
}

/// The prototype's 1 GbE managed switches (Nortel 5510 / Catalyst 4948)
/// are store-and-forward, ~6 µs class devices.
fn prototype_latency_model() -> LatencyModel {
    let sf_1g = SwitchSpec {
        name: "48-port 1GbE managed",
        latency_ns: 6_000,
        cut_through: false,
        ports_10g: 48,
        ports_40g: 0,
    };
    LatencyModel {
        edge: sf_1g,
        core: sf_1g,
        host_send_ns: 0,
        host_recv_ns: 0,
    }
}

/// Mean RPC round-trip under `cross_mbps` per source on one prototype
/// wiring. `quartz` selects the mesh (vs the rewired tree).
fn rpc_latency_ns(quartz: bool, cross_mbps: f64, rpc_count: u32, seed: u64) -> f64 {
    const RPC_SIZE: u32 = 100; // a "Hello World" Thrift call
    const BURST_PKTS: u32 = 20;
    const BURST_BYTES: f64 = 20.0 * 1500.0;

    let cfg = SimConfig {
        seed,
        latency: prototype_latency_model(),
        ..SimConfig::default()
    };
    let horizon = SimTime::from_ms(4_000);

    let (net, rpc_pair, cross) = if quartz {
        let p = prototype_quartz();
        // Hosts: [S1: 0,1 | S2: 2,3 | S3: 4,5 | S4: 6,7].
        // RPC: Rsrc on S2 → Rdst on S3. Cross: both S1 servers and one
        // S4 server → the other S3 server. In the mesh, each cross flow
        // rides its own dedicated channel (S1→S3, S4→S3), so none shares
        // a link with the RPC — the topology property Figure 14
        // demonstrates ("the RPC latency is unaffected by cross-traffic
        // with Quartz").
        (
            p.net,
            (p.hosts[2], p.hosts[4]),
            vec![
                (p.hosts[0], p.hosts[5]),
                (p.hosts[1], p.hosts[5]),
                (p.hosts[6], p.hosts[5]),
            ],
        )
    } else {
        let p = prototype_two_tier();
        // Hosts: [T1: 0,1 | T2: 2,3 | T3: 4,5], root S1.
        // RPC: Rsrc on T1 → Rdst on T2. Cross: one T1 server and both T3
        // servers → the other T2 server: all three share the root→T2
        // link with the RPC.
        (
            p.net,
            (p.hosts[0], p.hosts[2]),
            vec![
                (p.hosts[1], p.hosts[3]),
                (p.hosts[4], p.hosts[3]),
                (p.hosts[5], p.hosts[3]),
            ],
        )
    };

    let mut sim = Simulator::new(net, cfg);
    sim.add_flow(
        rpc_pair.0,
        rpc_pair.1,
        RPC_SIZE,
        FlowKind::Rpc { count: rpc_count },
        0,
        SimTime::from_us(10),
    );
    if cross_mbps > 0.0 {
        let gbps = cross_mbps / 1_000.0;
        let period_ns = (BURST_BYTES * 8.0 / gbps) as u64;
        for (i, &(s, d)) in cross.iter().enumerate() {
            sim.add_flow(
                s,
                d,
                1_500,
                FlowKind::Burst {
                    burst_pkts: BURST_PKTS,
                    period_ns,
                    stop: horizon,
                },
                1,
                // Stagger the unsynchronized sources (§6.1: "the bursty
                // traffic from the three servers are not synchronized").
                SimTime::from_ns(period_ns / 3 * i as u64),
            );
        }
    }
    sim.run(horizon);
    let s = sim.stats().summary(0);
    assert_eq!(
        s.count as u32, rpc_count,
        "RPC loop must complete: got {} of {rpc_count}",
        s.count
    );
    s.mean_ns
}

/// Sweeps cross-traffic 0..=200 Mb/s per source (over one worker per
/// hardware thread).
pub fn run(scale: Scale) -> Vec<Point> {
    run_with(scale, &ThreadPool::default())
}

/// Sweeps cross-traffic over `pool`: the two zero-cross baselines and
/// every `(wiring, Mb/s)` sweep point are independent simulations, so
/// all of them parallelize; ratios are formed afterwards on this
/// thread, bit-identical at any worker count.
pub fn run_with(scale: Scale, pool: &ThreadPool) -> Vec<Point> {
    let (rpc_count, step) = match scale {
        Scale::Paper => (10_000, 25.0),
        Scale::Quick => (300, 100.0),
    };
    let mut sweep = Vec::new();
    let mut mbps = 0.0;
    while mbps <= 200.0 + 1e-9 {
        sweep.push(mbps);
        mbps += step;
    }
    // Units: the two baselines first, then (tree, quartz) per point —
    // the exact evaluation order of the sequential loop.
    let units: Vec<(bool, f64)> = [(false, 0.0), (true, 0.0)]
        .into_iter()
        .chain(sweep.iter().flat_map(|&m| [(false, m), (true, m)]))
        .collect();
    let lat = pool.par_map(units.len(), |i| {
        let (quartz, mbps) = units[i];
        rpc_latency_ns(quartz, mbps, rpc_count, 1)
    });
    let (base_tree, base_quartz) = (lat[0], lat[1]);
    sweep
        .iter()
        .enumerate()
        .map(|(j, &m)| Point {
            cross_mbps: m,
            tree: lat[2 + 2 * j] / base_tree,
            quartz: lat[3 + 2 * j] / base_quartz,
        })
        .collect()
}

/// Prints the Figure 14 series.
pub fn print(scale: Scale) {
    print_with(scale, &ThreadPool::default());
}

/// Prints the Figure 14 series, computed over `pool`.
pub fn print_with(scale: Scale, pool: &ThreadPool) {
    print_ctx(scale, pool, None);
}

/// [`print_with`] plus the shared `--trace-out` hook: the sweep runs
/// once; the same points feed both the table and the metrics trace.
pub fn print_ctx(scale: Scale, pool: &ThreadPool, trace: Option<&std::path::Path>) {
    let points = run_with(scale, pool);
    render(&points);
    if let Some(path) = trace {
        crate::trace::write(path, &trace_ndjson(&points));
    }
}

/// The metrics-trace body for [`print_ctx`].
fn trace_ndjson(points: &[Point]) -> String {
    let mut m = quartz_obs::MetricsRegistry::new();
    m.inc("fig14.points", points.len() as u64);
    for p in points {
        m.set_gauge(&format!("fig14.tree.mbps{:03.0}", p.cross_mbps), p.tree);
        m.set_gauge(&format!("fig14.quartz.mbps{:03.0}", p.cross_mbps), p.quartz);
    }
    m.to_ndjson()
}

/// Renders the computed points as the Figure 14 table.
fn render(points: &[Point]) {
    crate::outln!("Figure 14: impact of cross-traffic on normalized RPC latency\n");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.cross_mbps),
                format!("{:.3}", p.tree),
                format!("{:.3}", p.quartz),
            ]
        })
        .collect();
    crate::table::print_table(&["Cross-traffic (Mb/s)", "Two-tier tree", "Quartz"], &rows);
    crate::outln!(
        "\nPaper: at 200 Mb/s the tree RPC slows by >70% while Quartz is unaffected (§6.1)."
    );
}
