//! Table 2 — network latencies of different network components.

use crate::table::print_table;
use crate::Scale;
use quartz_netsim::latency::{STANDARD, STATE_OF_ART};

/// `(component, standard ns, state-of-art ns)`.
pub type Row = (&'static str, u64, u64);

/// The Table 2 component latencies.
pub fn run(_scale: Scale) -> Vec<Row> {
    vec![
        ("OS Network Stack", STANDARD.stack_ns, STATE_OF_ART.stack_ns),
        ("NIC", STANDARD.nic_ns, STATE_OF_ART.nic_ns),
        ("Switch", STANDARD.switch_ns, STATE_OF_ART.switch_ns),
        (
            "Congestion",
            STANDARD.congestion_ns,
            STATE_OF_ART.congestion_ns,
        ),
    ]
}

/// Pass-through for the shared `--jobs` plumbing: the table is static,
/// so the pool is unused.
pub fn run_with(scale: Scale, _pool: &quartz_core::ThreadPool) -> Vec<Row> {
    run(scale)
}

/// Pass-through for the shared `--jobs` plumbing (see [`run_with`]).
pub fn print_with(scale: Scale, _pool: &quartz_core::ThreadPool) {
    print(scale);
}

/// [`print_with`] plus the shared `--trace-out` hook: also writes the
/// component latencies as a metrics trace.
pub fn print_ctx(scale: Scale, pool: &quartz_core::ThreadPool, trace: Option<&std::path::Path>) {
    print_with(scale, pool);
    if let Some(path) = trace {
        crate::trace::write(path, &trace_ndjson(&run(scale)));
    }
}

/// The metrics-trace body for [`print_ctx`].
fn trace_ndjson(rows: &[Row]) -> String {
    let mut m = quartz_obs::MetricsRegistry::new();
    m.inc("table02.rows", rows.len() as u64);
    for (component, std_ns, art_ns) in rows {
        let key = component.to_ascii_lowercase().replace(' ', "_");
        m.set_gauge(&format!("table02.standard_ns.{key}"), *std_ns as f64);
        m.set_gauge(&format!("table02.state_of_art_ns.{key}"), *art_ns as f64);
    }
    m.to_ndjson()
}

/// Prints Table 2.
pub fn print(scale: Scale) {
    crate::outln!("Table 2: network latencies of different network components\n");
    let rows: Vec<Vec<String>> = run(scale)
        .into_iter()
        .map(|(c, s, a)| {
            vec![
                c.to_string(),
                format!("{:.1}", s as f64 / 1e3),
                format!("{:.1}", a as f64 / 1e3),
            ]
        })
        .collect();
    print_table(&["Component", "Standard (µs)", "State of Art (µs)"], &rows);
    crate::outln!("\nNote: congestion is the Table 2 ~50 µs queueing figure; Quartz attacks it with topology rather than protocol changes (§1).");
}
