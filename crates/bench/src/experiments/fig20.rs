//! Figure 20 — the pathological traffic pattern of §7.2: multiple flows
//! from switch S1 to receivers on switch S2, stressing switch-to-switch
//! bandwidth. Compares a non-blocking store-and-forward core switch, a
//! four-switch 40 GbE Quartz ring with ECMP (direct paths only), and the
//! same ring with VLB.

use crate::table::print_table;
use crate::Scale;
use quartz_core::pool::ThreadPool;
use quartz_netsim::sim::{FlowKind, SimConfig, Simulator, VlbConfig};
use quartz_netsim::time::SimTime;
use quartz_topology::builders::quartz_mesh;
use quartz_topology::graph::{Network, NodeId, SwitchRole};

/// The compared designs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Design {
    /// A single non-blocking (but store-and-forward, 6 µs) core switch.
    NonBlockingSwitch,
    /// Quartz in core, ECMP routing (direct channel only).
    QuartzEcmp,
    /// Quartz in core, VLB over the two-hop detours.
    QuartzVlb,
}

impl Design {
    /// Legend name.
    pub fn name(&self) -> &'static str {
        match self {
            Design::NonBlockingSwitch => "Non-blocking Switch",
            Design::QuartzEcmp => "Quartz in Core (ECMP)",
            Design::QuartzVlb => "Quartz in Core (VLB)",
        }
    }
}

const SENDERS: usize = 5;

/// Builds the topology: either 4×40G-meshed switches with 5 hosts each,
/// or all 10 endpoints on one core switch.
fn build(design: Design) -> (Network, Vec<NodeId>, Vec<NodeId>, Option<VlbConfig>) {
    match design {
        Design::NonBlockingSwitch => {
            let mut net = Network::new();
            let core = net.add_switch(SwitchRole::Core, None);
            let mk = |net: &mut Network, rack| {
                (0..SENDERS)
                    .map(|_| {
                        let h = net.add_host(Some(rack));
                        net.connect(h, core, 40.0);
                        h
                    })
                    .collect::<Vec<_>>()
            };
            let senders = mk(&mut net, 0);
            let receivers = mk(&mut net, 1);
            (net, senders, receivers, None)
        }
        Design::QuartzEcmp | Design::QuartzVlb => {
            let q = quartz_mesh(4, SENDERS, 40.0, 40.0);
            let senders = q.hosts[0..SENDERS].to_vec();
            let receivers = q.hosts[SENDERS..2 * SENDERS].to_vec();
            let vlb = (design == Design::QuartzVlb).then(|| VlbConfig {
                fraction: 0.5,
                domains: vec![q.switches.clone()],
            });
            (q.net, senders, receivers, vlb)
        }
    }
}

/// Mean packet latency (µs) and loss fraction at `aggregate_gbps` of
/// S1→S2 traffic.
pub fn simulate(design: Design, aggregate_gbps: f64, sim_ms: u64, seed: u64) -> (f64, f64) {
    let (net, senders, receivers, vlb) = build(design);
    let mut sim = Simulator::new(
        net,
        SimConfig {
            seed,
            vlb,
            ..SimConfig::default()
        },
    );
    let stop = SimTime::from_ms(sim_ms);
    let per_flow_gbps = aggregate_gbps / SENDERS as f64;
    let mean_gap_ns = 400.0 * 8.0 / per_flow_gbps;
    for (&s, &d) in senders.iter().zip(&receivers) {
        sim.add_flow(
            s,
            d,
            400,
            FlowKind::Poisson {
                mean_gap_ns,
                stop,
                respond: false,
            },
            0,
            SimTime::ZERO,
        );
    }
    sim.run(stop + 5_000_000);
    let st = sim.stats();
    let loss = st.dropped as f64 / st.generated.max(1) as f64;
    (st.summary(0).mean_us(), loss)
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Point {
    /// Aggregate S1→S2 traffic, Gb/s.
    pub gbps: f64,
    /// `(mean latency µs, loss fraction)` per design, in
    /// [`designs`] order.
    pub results: Vec<(f64, f64)>,
}

/// The designs in output order.
pub fn designs() -> [Design; 3] {
    [
        Design::NonBlockingSwitch,
        Design::QuartzEcmp,
        Design::QuartzVlb,
    ]
}

/// Sweeps aggregate traffic 10..=50 Gb/s (over one worker per hardware
/// thread).
pub fn run(scale: Scale) -> Vec<Point> {
    run_with(scale, &ThreadPool::default())
}

/// Sweeps aggregate traffic over `pool`: one unit per `(load point,
/// design)` simulation, reassembled in sweep order — bit-identical at
/// any worker count.
pub fn run_with(scale: Scale, pool: &ThreadPool) -> Vec<Point> {
    let (sim_ms, points): (u64, Vec<f64>) = match scale {
        Scale::Paper => (8, vec![10.0, 20.0, 30.0, 40.0, 45.0, 50.0]),
        Scale::Quick => (1, vec![10.0, 50.0]),
    };
    let n_designs = designs().len();
    let cells = pool.par_map(points.len() * n_designs, |i| {
        let (gbps, d) = (points[i / n_designs], designs()[i % n_designs]);
        simulate(d, gbps, sim_ms, 7)
    });
    points
        .into_iter()
        .enumerate()
        .map(|(p, gbps)| Point {
            gbps,
            results: cells[p * n_designs..(p + 1) * n_designs].to_vec(),
        })
        .collect()
}

/// Prints the Figure 20 series.
pub fn print(scale: Scale) {
    print_with(scale, &ThreadPool::default());
}

/// Prints the Figure 20 series, computed over `pool`.
pub fn print_with(scale: Scale, pool: &ThreadPool) {
    print_ctx(scale, pool, None);
}

/// [`print_with`] plus the shared `--trace-out` hook: the sweep runs
/// once; the same points feed both the table and the metrics trace.
pub fn print_ctx(scale: Scale, pool: &ThreadPool, trace: Option<&std::path::Path>) {
    let pts = run_with(scale, pool);
    render(&pts);
    if let Some(path) = trace {
        crate::trace::write(path, &trace_ndjson(&pts));
    }
}

/// The metrics-trace body for [`print_ctx`].
fn trace_ndjson(points: &[Point]) -> String {
    let mut m = quartz_obs::MetricsRegistry::new();
    m.inc("fig20.points", points.len() as u64);
    for p in points {
        for (d, &(lat_us, loss)) in designs().iter().zip(&p.results) {
            let key = d.name().to_ascii_lowercase().replace([' ', '+'], "_");
            m.set_gauge(&format!("fig20.latency_us.g{:02.0}.{key}", p.gbps), lat_us);
            m.set_gauge(&format!("fig20.loss.g{:02.0}.{key}", p.gbps), loss);
        }
    }
    m.to_ndjson()
}

/// Renders the computed points as the Figure 20 table.
fn render(pts: &[Point]) {
    crate::outln!("Figure 20: pathological S1→S2 pattern — latency per packet (µs)\n");
    let mut headers: Vec<String> = vec!["Traffic (Gb/s)".into()];
    headers.extend(designs().iter().map(|d| d.name().to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            let mut cells = vec![format!("{:.0}", p.gbps)];
            for &(us, loss) in &p.results {
                cells.push(if loss > 0.001 {
                    format!("{us:.1} ({:.0}% loss)", loss * 100.0)
                } else {
                    format!("{us:.2}")
                });
            }
            cells
        })
        .collect();
    print_table(&headers_ref, &rows);
    crate::outln!("\nPaper: the non-blocking switch is flat but pays its 6 µs store-and-forward latency; Quartz+ECMP is far lower until the 40 Gb/s direct channel saturates (then unbounded, ~125 µs with our 512 KiB ports); Quartz+VLB stays low through 50 Gb/s (§7.2).");
}
