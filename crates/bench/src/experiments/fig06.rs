//! Figure 6 — fault tolerance of a 33-switch Quartz network: bandwidth
//! loss (top panel) and partition probability (bottom panel) vs number of
//! broken fiber links, for one to four physical rings.
//!
//! The **dynamic** panel goes beyond the paper's static analysis: it cuts
//! one fiber mid-run under steady Poisson traffic and reports what the
//! packets saw — pre/post latency, hop-count stretch of the detour, the
//! control plane's reconvergence time, the packets lost during the
//! outage — plus the waterfill-level throughput retained by the degraded
//! mesh.

use crate::table::{pct, print_table};
use crate::Scale;
use quartz_core::fault::{FailureModel, FaultReport};
use quartz_core::pool::ThreadPool;
use quartz_flowsim::degraded::DegradedQuartzFabric;
use quartz_flowsim::fabric::{MeshRouting, QuartzFabric};
use quartz_flowsim::matrix::random_permutation;
use quartz_flowsim::throughput::{normalized_throughput, normalized_throughput_metered};
use quartz_netsim::faults::{
    ring_cut_scenario, ring_cut_scenario_traced, CutScenarioConfig, CutScenarioReport,
};
use quartz_obs::{Event, MetricsRegistry};

/// The full grid: `reports[rings-1][failures-1]` (computed over one
/// worker per hardware thread).
pub fn run(scale: Scale) -> Vec<Vec<FaultReport>> {
    run_with(scale, &ThreadPool::default())
}

/// The full grid over `pool`: one unit per `(rings, failures)` cell.
/// Each cell's Monte-Carlo stream depends only on its own seed, so the
/// grid is bit-identical at any worker count. The cells themselves run
/// monte_carlo sequentially — parallelism at the grid level already
/// saturates the pool without nesting.
pub fn run_with(scale: Scale, pool: &ThreadPool) -> Vec<Vec<FaultReport>> {
    let (m, trials) = match scale {
        Scale::Paper => (33, 20_000),
        Scale::Quick => (17, 1_000),
    };
    let cells = pool.par_map(16, |i| {
        let (rings, failures) = (i / 4 + 1, i % 4 + 1);
        FailureModel::new(m, rings).monte_carlo(failures, trials, 0xF16 + failures as u64)
    });
    let mut cells = cells.into_iter();
    (1..=4usize)
        .map(|_| {
            (1..=4usize)
                .map(|_| cells.next().expect("16 cells"))
                .collect()
        })
        .collect()
}

/// [`run_with`] with per-cell observability: the same grid, plus a
/// registry of `fig06.loss.r<rings>.f<failures>` /
/// `fig06.partition.r<rings>.f<failures>` gauges aggregated in
/// unit-index order (bit-identical at any worker count).
pub fn run_observed_with(
    scale: Scale,
    pool: &ThreadPool,
) -> (Vec<Vec<FaultReport>>, MetricsRegistry) {
    let (m, trials) = match scale {
        Scale::Paper => (33, 20_000),
        Scale::Quick => (17, 1_000),
    };
    let (cells, metrics) = pool.par_map_observed(16, |i, reg| {
        let (rings, failures) = (i / 4 + 1, i % 4 + 1);
        let r = FailureModel::new(m, rings).monte_carlo(failures, trials, 0xF16 + failures as u64);
        reg.inc("fig06.grid.cells", 1);
        reg.set_gauge(
            &format!("fig06.loss.r{rings}.f{failures}"),
            r.mean_bandwidth_loss,
        );
        reg.set_gauge(
            &format!("fig06.partition.r{rings}.f{failures}"),
            r.partition_probability,
        );
        r
    });
    let mut cells = cells.into_iter();
    let grid = (1..=4usize)
        .map(|_| {
            (1..=4usize)
                .map(|_| cells.next().expect("16 cells"))
                .collect()
        })
        .collect();
    (grid, metrics)
}

/// The dynamic fiber-cut measurement: the packet-level scenario plus the
/// flow-level throughput the degraded mesh retains.
#[derive(Clone, Debug, PartialEq)]
pub struct DynamicReport {
    /// The mid-run ring-cut experiment (severed pair's before/after).
    pub scenario: CutScenarioReport,
    /// Normalized throughput of the intact mesh on a random permutation.
    pub intact_throughput: f64,
    /// Same permutation on the mesh with the cut channel severed.
    pub degraded_throughput: f64,
}

/// Runs the dynamic panel: one fiber cut at t = T during steady Poisson
/// traffic on the mesh, plus the waterfill before/after comparison.
pub fn run_dynamic(scale: Scale) -> DynamicReport {
    run_dynamic_with(scale, &ThreadPool::default())
}

/// Runs the dynamic panel over `pool`. The packet-level cut scenario
/// and the flow-level waterfill comparison share no state, so they run
/// as two parallel units; each is internally sequential and seeded, so
/// the report is bit-identical at any worker count.
pub fn run_dynamic_with(scale: Scale, pool: &ThreadPool) -> DynamicReport {
    let cfg = match scale {
        Scale::Paper => CutScenarioConfig::paper(0xD16),
        Scale::Quick => CutScenarioConfig::quick(0xD16),
    };
    let racks = cfg.switches;

    enum Half {
        Scenario(CutScenarioReport),
        Waterfill { intact: f64, degraded: f64 },
    }
    let mut halves = pool
        .par_map(2, |i| {
            if i == 0 {
                Half::Scenario(ring_cut_scenario(&cfg))
            } else {
                let intact = QuartzFabric {
                    racks,
                    hosts_per_rack: 4,
                    channel_cap: 1.0,
                    policy: MeshRouting::VlbUniform(0.5),
                };
                let demands = random_permutation(racks * 4, 0xD16);
                let intact_throughput = normalized_throughput(&intact, &demands).normalized;
                // Sever the same channel the scenario cuts: switches 0 ↔ 1.
                let degraded = DegradedQuartzFabric::new(intact, &[(0, 1)]);
                Half::Waterfill {
                    intact: intact_throughput,
                    degraded: normalized_throughput(&degraded, &demands).normalized,
                }
            }
        })
        .into_iter();

    let (Some(Half::Scenario(scenario)), Some(Half::Waterfill { intact, degraded })) =
        (halves.next(), halves.next())
    else {
        unreachable!("par_map returns both halves in index order");
    };
    DynamicReport {
        scenario,
        intact_throughput: intact,
        degraded_throughput: degraded,
    }
}

/// [`run_dynamic_with`] with full observability: the packet-level
/// scenario records every event through a `MemoryRecorder` and its sim
/// metrics, while the waterfill half meters its solver iterations; the
/// two units' registries fold in unit-index order. The report is
/// bit-identical to [`run_dynamic_with`]'s (tracing is observe-only),
/// and the events and metrics are bit-identical at any worker count.
pub fn run_dynamic_traced_with(
    scale: Scale,
    pool: &ThreadPool,
) -> (DynamicReport, Vec<Event>, MetricsRegistry) {
    let cfg = match scale {
        Scale::Paper => CutScenarioConfig::paper(0xD16),
        Scale::Quick => CutScenarioConfig::quick(0xD16),
    };
    let racks = cfg.switches;

    enum Half {
        Scenario(Box<(CutScenarioReport, Vec<Event>)>),
        Waterfill { intact: f64, degraded: f64 },
    }
    let (halves, metrics) = pool.par_map_observed(2, |i, reg| {
        if i == 0 {
            let (scenario, events, sim_metrics) = ring_cut_scenario_traced(&cfg);
            reg.merge(&sim_metrics);
            Half::Scenario(Box::new((scenario, events)))
        } else {
            let intact = QuartzFabric {
                racks,
                hosts_per_rack: 4,
                channel_cap: 1.0,
                policy: MeshRouting::VlbUniform(0.5),
            };
            let demands = random_permutation(racks * 4, 0xD16);
            let intact_throughput =
                normalized_throughput_metered(&intact, &demands, reg).normalized;
            // Sever the same channel the scenario cuts: switches 0 ↔ 1.
            let degraded = DegradedQuartzFabric::new(intact, &[(0, 1)]);
            Half::Waterfill {
                intact: intact_throughput,
                degraded: normalized_throughput_metered(&degraded, &demands, reg).normalized,
            }
        }
    });

    let mut halves = halves.into_iter();
    let (Some(Half::Scenario(boxed)), Some(Half::Waterfill { intact, degraded })) =
        (halves.next(), halves.next())
    else {
        unreachable!("par_map_observed returns both halves in index order");
    };
    let (scenario, events) = *boxed;
    (
        DynamicReport {
            scenario,
            intact_throughput: intact,
            degraded_throughput: degraded,
        },
        events,
        metrics,
    )
}

/// The full Figure 6 trace body: the dynamic panel's packet events
/// (ndjson, time-ordered) followed by the merged metrics of both panels
/// (grid gauges, sim counters/histograms, waterfill meters). Byte-
/// identical at any worker count.
pub fn trace_ndjson_with(scale: Scale, pool: &ThreadPool) -> String {
    let (_, grid_metrics) = run_observed_with(scale, pool);
    let (_, events, mut metrics) = run_dynamic_traced_with(scale, pool);
    metrics.merge(&grid_metrics);
    let mut out = quartz_obs::event::to_ndjson(&events);
    out.push_str(&metrics.to_ndjson());
    out
}

/// Prints both Figure 6 panels.
pub fn print(scale: Scale) {
    print_with(scale, &ThreadPool::default());
}

/// Prints both Figure 6 panels, computed over `pool`.
pub fn print_with(scale: Scale, pool: &ThreadPool) {
    print_ctx(scale, pool, None);
}

/// [`print_with`] plus the shared `--trace-out` hook. Without a trace
/// path this is exactly the untraced run (no recorder anywhere near the
/// simulator); with one, both panels rerun in observed mode — reports
/// are bit-identical either way — and the packet events + merged
/// metrics land at `trace`. Both stages are phase-timed, so
/// `BENCH_fig06_fault_tolerance.json` carries a `phase` breakdown.
pub fn print_ctx(scale: Scale, pool: &ThreadPool, trace: Option<&std::path::Path>) {
    let grid = crate::timing::phase_timed("fig06.grid", || run_with(scale, pool));
    render_grid(&grid);
    let dyn_report = crate::timing::phase_timed("fig06.dynamic", || run_dynamic_with(scale, pool));
    render_dynamic(&dyn_report);
    if let Some(path) = trace {
        let body = crate::timing::phase_timed("fig06.trace", || trace_ndjson_with(scale, pool));
        crate::trace::write(path, &body);
    }
}

/// Renders the three static-panel tables.
fn render_grid(grid: &[Vec<FaultReport>]) {
    crate::outln!("Figure 6 (top): mean bandwidth loss vs broken fiber links\n");
    let headers = [
        "Rings",
        "1 failure",
        "2 failures",
        "3 failures",
        "4 failures",
    ];
    let loss_rows: Vec<Vec<String>> = grid
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut cells = vec![(i + 1).to_string()];
            cells.extend(row.iter().map(|r| pct(r.mean_bandwidth_loss)));
            cells
        })
        .collect();
    print_table(&headers, &loss_rows);

    crate::outln!("\nFigure 6 (bottom): probability of network partition\n");
    let part_rows: Vec<Vec<String>> = grid
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut cells = vec![(i + 1).to_string()];
            cells.extend(
                row.iter()
                    .map(|r| format!("{:.4}", r.partition_probability)),
            );
            cells
        })
        .collect();
    print_table(&headers, &part_rows);

    crate::outln!("\nFigure 6 (companion): detour stretch over surviving channels\n");
    let stretch_rows: Vec<Vec<String>> = grid
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut cells = vec![(i + 1).to_string()];
            cells.extend(row.iter().map(|r| {
                format!(
                    "{:.2}x / {:.2}",
                    r.mean_detour_stretch, r.mean_post_failure_hops
                )
            }));
            cells
        })
        .collect();
    print_table(&headers, &stretch_rows);
    crate::outln!("(severed pairs' mean detour hop count / mesh-wide mean post-failure hops)");

    crate::outln!(
        "\nPaper: one ring loses ~20% bandwidth per cut (ours ~{}); with two rings, four simultaneous failures partition with probability ~0.24% (ours {:.4}).",
        pct(grid[0][0].mean_bandwidth_loss),
        grid[1][3].partition_probability
    );
}

/// Renders the dynamic-panel summary lines.
fn render_dynamic(dyn_report: &DynamicReport) {
    let s = &dyn_report.scenario;
    crate::outln!("\nFigure 6 (dynamic): one fiber cut mid-run under steady Poisson traffic\n");
    crate::outln!(
        "  severed pair latency: p50 {:.2} -> {:.2} us (mean {:.2} -> {:.2} us)",
        s.pre.p50_ns as f64 / 1e3,
        s.post.p50_ns as f64 / 1e3,
        s.pre.mean_ns / 1e3,
        s.post.mean_ns / 1e3,
    );
    crate::outln!(
        "  path stretch: {:.2} -> {:.2} links per packet",
        s.pre_mean_hops,
        s.post_mean_hops
    );
    match s.reconvergence_ns {
        Some(ns) => crate::outln!(
            "  reconvergence: {:.1} us ({} packets lost during the outage)",
            ns as f64 / 1e3,
            s.drops_during_outage
        ),
        None => crate::outln!("  reconvergence: never (routes stayed stale)"),
    }
    crate::outln!(
        "  waterfill throughput: {:.3} intact -> {:.3} degraded ({:.1}% retained)",
        dyn_report.intact_throughput,
        dyn_report.degraded_throughput,
        100.0 * dyn_report.degraded_throughput / dyn_report.intact_throughput
    );
}
