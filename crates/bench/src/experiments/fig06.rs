//! Figure 6 — fault tolerance of a 33-switch Quartz network: bandwidth
//! loss (top panel) and partition probability (bottom panel) vs number of
//! broken fiber links, for one to four physical rings.

use crate::table::{pct, print_table};
use crate::Scale;
use quartz_core::fault::{FailureModel, FaultReport};

/// The full grid: `reports[rings-1][failures-1]`.
pub fn run(scale: Scale) -> Vec<Vec<FaultReport>> {
    let (m, trials) = match scale {
        Scale::Paper => (33, 20_000),
        Scale::Quick => (17, 1_000),
    };
    (1..=4usize)
        .map(|rings| {
            let model = FailureModel::new(m, rings);
            (1..=4usize)
                .map(|failures| model.monte_carlo(failures, trials, 0xF16 + failures as u64))
                .collect()
        })
        .collect()
}

/// Prints both Figure 6 panels.
pub fn print(scale: Scale) {
    let grid = run(scale);
    println!("Figure 6 (top): mean bandwidth loss vs broken fiber links\n");
    let headers = [
        "Rings",
        "1 failure",
        "2 failures",
        "3 failures",
        "4 failures",
    ];
    let loss_rows: Vec<Vec<String>> = grid
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut cells = vec![(i + 1).to_string()];
            cells.extend(row.iter().map(|r| pct(r.mean_bandwidth_loss)));
            cells
        })
        .collect();
    print_table(&headers, &loss_rows);

    println!("\nFigure 6 (bottom): probability of network partition\n");
    let part_rows: Vec<Vec<String>> = grid
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut cells = vec![(i + 1).to_string()];
            cells.extend(
                row.iter()
                    .map(|r| format!("{:.4}", r.partition_probability)),
            );
            cells
        })
        .collect();
    print_table(&headers, &part_rows);

    println!(
        "\nPaper: one ring loses ~20% bandwidth per cut (ours ~{}); with two rings, four simultaneous failures partition with probability ~0.24% (ours {:.4}).",
        pct(grid[0][0].mean_bandwidth_loss),
        grid[1][3].partition_probability
    );
}
