//! Extension experiment E2 — the server-centric structures §2.1.5
//! surveys but Table 9 omits: DCell and CamCube alongside BCube and the
//! Quartz mesh, measured with the same metrics.
//!
//! "DCell, BCube and CamCube are networks that use servers as switches
//! to assist in packet forwarding … using servers to perform packet
//! forwarding can introduce substantial delays in the OS network stack."
//! The table charges every relay server the §2.1.5 stack penalty and
//! shows the latency cliff between switch-forwarded and server-forwarded
//! designs.

use crate::table::print_table;
use crate::Scale;
use quartz_topology::builders::{bcube, camcube, dcell_1, quartz_mesh};
use quartz_topology::metrics::{diameter_hops, latency_no_congestion_us, HopCounts};
use quartz_topology::route::RouteTable;

/// One structure's row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Structure name.
    pub name: &'static str,
    /// Servers in the measured instance.
    pub servers: usize,
    /// Worst-case hop composition.
    pub hops: HopCounts,
    /// Uncongested latency (0.5 µs per switch, 15 µs per relay server).
    pub latency_us: f64,
}

/// Measures the four structures at comparable small scale.
pub fn run(scale: Scale) -> Vec<Row> {
    let paper = scale == Scale::Paper;
    let mut rows = Vec::new();

    let mut push = |name, net: &quartz_topology::Network| {
        let t = RouteTable::all_shortest_paths(net);
        let hops = diameter_hops(net, &t);
        rows.push(Row {
            name,
            servers: net.hosts().len(),
            hops,
            latency_us: latency_no_congestion_us(hops, 0.5, 15.0),
        });
    };

    let q = if paper {
        quartz_mesh(8, 8, 10.0, 10.0)
    } else {
        quartz_mesh(4, 4, 10.0, 10.0)
    };
    push("Quartz mesh", &q.net);

    let b = if paper {
        bcube(8, 1, 10.0)
    } else {
        bcube(4, 1, 10.0)
    };
    push("BCube(n,1)", &b.net);

    let d = if paper {
        dcell_1(8, 10.0)
    } else {
        dcell_1(4, 10.0)
    };
    push("DCell_1(n)", &d.net);

    let c = if paper {
        camcube(4, 10.0)
    } else {
        camcube(3, 10.0)
    };
    push("CamCube", &c.net);

    rows
}

/// Prints the E2 table.
pub fn print(scale: Scale) {
    println!("Extension E2: server-centric structures vs the Quartz mesh (§2.1.5)\n");
    let rows: Vec<Vec<String>> = run(scale)
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.servers.to_string(),
                format!("{} sw + {} srv", r.hops.switch_hops, r.hops.server_hops),
                format!("{:.1}", r.latency_us),
            ]
        })
        .collect();
    print_table(
        &[
            "Structure",
            "Servers",
            "Worst-case hops",
            "Latency w/o congestion (µs)",
        ],
        &rows,
    );
    println!("\nEvery relay *server* costs ~15 µs of OS stack (Table 2) — the cliff between switch-forwarded (Quartz: 1.0 µs) and server-forwarded designs.");
}
