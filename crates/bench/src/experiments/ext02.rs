//! Extension experiment E2 — the server-centric structures §2.1.5
//! surveys but Table 9 omits: DCell and CamCube alongside BCube and the
//! Quartz mesh, measured with the same metrics.
//!
//! "DCell, BCube and CamCube are networks that use servers as switches
//! to assist in packet forwarding … using servers to perform packet
//! forwarding can introduce substantial delays in the OS network stack."
//! The table charges every relay server the §2.1.5 stack penalty and
//! shows the latency cliff between switch-forwarded and server-forwarded
//! designs.

use crate::table::print_table;
use crate::Scale;
use quartz_core::pool::ThreadPool;
use quartz_topology::builders::{bcube, camcube, dcell_1, quartz_mesh};
use quartz_topology::metrics::{diameter_hops, latency_no_congestion_us, HopCounts};
use quartz_topology::route::RouteTable;

/// One structure's row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Structure name.
    pub name: &'static str,
    /// Servers in the measured instance.
    pub servers: usize,
    /// Worst-case hop composition.
    pub hops: HopCounts,
    /// Uncongested latency (0.5 µs per switch, 15 µs per relay server).
    pub latency_us: f64,
}

/// Measures the four structures at comparable small scale (over one
/// worker per hardware thread).
pub fn run(scale: Scale) -> Vec<Row> {
    run_with(scale, &ThreadPool::default())
}

/// Measures the four structures as independent units over `pool` (each
/// unit builds its topology and runs the all-pairs shortest-path
/// analysis).
pub fn run_with(scale: Scale, pool: &ThreadPool) -> Vec<Row> {
    let paper = scale == Scale::Paper;

    let build_row = |name, net: &quartz_topology::Network| {
        let t = RouteTable::all_shortest_paths(net);
        let hops = diameter_hops(net, &t);
        Row {
            name,
            servers: net.hosts().len(),
            hops,
            latency_us: latency_no_congestion_us(hops, 0.5, 15.0),
        }
    };

    pool.par_map(4, |i| match i {
        0 => {
            let q = if paper {
                quartz_mesh(8, 8, 10.0, 10.0)
            } else {
                quartz_mesh(4, 4, 10.0, 10.0)
            };
            build_row("Quartz mesh", &q.net)
        }
        1 => {
            let b = if paper {
                bcube(8, 1, 10.0)
            } else {
                bcube(4, 1, 10.0)
            };
            build_row("BCube(n,1)", &b.net)
        }
        2 => {
            let d = if paper {
                dcell_1(8, 10.0)
            } else {
                dcell_1(4, 10.0)
            };
            build_row("DCell_1(n)", &d.net)
        }
        _ => {
            let c = if paper {
                camcube(4, 10.0)
            } else {
                camcube(3, 10.0)
            };
            build_row("CamCube", &c.net)
        }
    })
}

/// Prints the E2 table.
pub fn print(scale: Scale) {
    print_with(scale, &ThreadPool::default());
}

/// Prints the E2 table, computed over `pool`.
pub fn print_with(scale: Scale, pool: &ThreadPool) {
    print_ctx(scale, pool, None);
}

/// [`print_with`] plus the shared `--trace-out` hook: the structures
/// build once; the same rows feed both the table and the metrics trace.
pub fn print_ctx(scale: Scale, pool: &ThreadPool, trace: Option<&std::path::Path>) {
    let rows = run_with(scale, pool);
    render(&rows);
    if let Some(path) = trace {
        crate::trace::write(path, &trace_ndjson(&rows));
    }
}

/// The metrics-trace body for [`print_ctx`].
fn trace_ndjson(rows: &[Row]) -> String {
    let mut m = quartz_obs::MetricsRegistry::new();
    m.inc("ext02.rows", rows.len() as u64);
    for r in rows {
        let key = r
            .name
            .to_ascii_lowercase()
            .replace([' ', '(', ')', ','], "_")
            .replace("__", "_");
        let key = key.trim_matches('_');
        m.set_gauge(&format!("ext02.servers.{key}"), r.servers as f64);
        m.set_gauge(&format!("ext02.latency_us.{key}"), r.latency_us);
        m.set_gauge(
            &format!("ext02.server_hops.{key}"),
            r.hops.server_hops as f64,
        );
    }
    m.to_ndjson()
}

/// Renders the computed rows as the E2 table.
fn render(rows: &[Row]) {
    crate::outln!("Extension E2: server-centric structures vs the Quartz mesh (§2.1.5)\n");
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.servers.to_string(),
                format!("{} sw + {} srv", r.hops.switch_hops, r.hops.server_hops),
                format!("{:.1}", r.latency_us),
            ]
        })
        .collect();
    print_table(
        &[
            "Structure",
            "Servers",
            "Worst-case hops",
            "Latency w/o congestion (µs)",
        ],
        &rows,
    );
    crate::outln!("\nEvery relay *server* costs ~15 µs of OS stack (Table 2) — the cliff between switch-forwarded (Quartz: 1.0 µs) and server-forwarded designs.");
}
