//! Extension experiment E3 — the §1 motivating workload, end to end.
//!
//! "In a measurement study from Facebook, servicing a remote HTTP
//! request can require as many as 88 cache lookups, 35 database lookups,
//! and 392 backend remote procedure calls." E3 runs exactly that request
//! — three dependent fan-out stages of request/response RPCs from one
//! front-end server — on the §7 architectures, with and without
//! cross-traffic, and reports the *request completion time* (the metric
//! the user of that HTTP request experiences).
//!
//! Because each stage waits for its slowest RPC, completion time is a
//! tail statistic: architectures with a store-and-forward core or shared
//! congestion points lose far more than their mean-latency gap suggests.

use crate::experiments::fig17::{add_task, Arch, Workload, PARTNERS};
use crate::table::print_table;
use crate::Scale;
use quartz_core::pool::ThreadPool;
use quartz_core::rng::{SliceRandom, StdRng};
use quartz_netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz_netsim::time::SimTime;

/// The §1 request recipe: `(stage name, RPC count, payload bytes)`.
pub const STAGES: [(&str, usize, u32); 3] = [
    ("cache lookups", 88, 400),
    ("database lookups", 35, 1_500),
    ("backend RPCs", 392, 400),
];

/// Outstanding RPCs per stage — real services cap concurrency (thread
/// pools, connection pools), which turns per-RPC latency into serialized
/// request time: the amplification §1 describes.
pub const WINDOW: usize = 16;

/// One measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Architecture.
    pub arch: Arch,
    /// Concurrent cross-traffic tasks.
    pub cross_tasks: usize,
    /// Mean request completion time over the measured requests, µs.
    pub completion_us: f64,
}

/// Runs one full request on `arch` with `cross_tasks` of background
/// scatter traffic; returns the completion time in µs.
pub fn one_request_us(arch: Arch, cross_tasks: usize, seed: u64) -> f64 {
    let (net, hosts) = arch.build();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = Simulator::new(
        net,
        SimConfig {
            seed: seed ^ 0xE3,
            ..SimConfig::default()
        },
    );
    let horizon = SimTime::from_ms(400);

    // Background cross-traffic (tag 99), as in Figure 17.
    let mut pool = hosts.clone();
    pool.shuffle(&mut rng);
    let front = pool[0];
    for t in 0..cross_tasks {
        let root = pool[1 + t];
        let mut partners: Vec<_> = hosts.iter().copied().filter(|&h| h != root).collect();
        partners.shuffle(&mut rng);
        add_task(
            &mut sim,
            Workload::Scatter,
            root,
            &partners[..PARTNERS],
            99,
            horizon,
        );
    }
    // Let the background traffic reach steady state.
    sim.run(SimTime::from_ms(1));

    // The request: three dependent fan-out stages from the front end,
    // each issued in windows of [`WINDOW`] outstanding RPCs.
    let t0 = sim.now();
    for (stage_idx, &(_, count, bytes)) in STAGES.iter().enumerate() {
        let tag = stage_idx as u32 + 1;
        let mut issued = 0usize;
        while issued < count {
            let wave = WINDOW.min(count - issued);
            let start = sim.now();
            for w in 0..wave {
                let i = issued + w;
                // Round-robin over the other servers (a request touches
                // many distinct cache/db/backend shards).
                let dst = hosts[(1 + i * 7) % hosts.len()];
                let dst = if dst == front {
                    hosts[(2 + i * 7) % hosts.len()]
                } else {
                    dst
                };
                sim.add_flow(front, dst, bytes, FlowKind::Rpc { count: 1 }, tag, start);
            }
            issued += wave;
            let done = sim.run_until_samples(tag, issued, horizon);
            assert!(done, "stage {stage_idx} did not finish before the horizon");
        }
    }
    sim.now().saturating_sub(t0) as f64 / 1e3
}

/// Measures all architectures at 0 and 4 cross-traffic tasks (over one
/// worker per hardware thread).
pub fn run(scale: Scale) -> Vec<Row> {
    run_with(scale, &ThreadPool::default())
}

/// Measures all architectures over `pool`: one unit per `(arch, cross
/// level, request)` simulation; per-row means fold in request order on
/// this thread, bit-identical at any worker count.
pub fn run_with(scale: Scale, pool: &ThreadPool) -> Vec<Row> {
    let (requests, cross_levels): (usize, Vec<usize>) = match scale {
        Scale::Paper => (5, vec![0, 2, 4]),
        Scale::Quick => (1, vec![0, 2]),
    };
    let archs = [
        Arch::ThreeTier,
        Arch::Jellyfish,
        Arch::QuartzInCore,
        Arch::QuartzInEdgeAndCore,
    ];
    let mut units = Vec::new();
    for &arch in &archs {
        for &cross in &cross_levels {
            for r in 0..requests {
                units.push((arch, cross, r));
            }
        }
    }
    let cells = pool.par_map(units.len(), |i| {
        let (arch, cross, r) = units[i];
        one_request_us(arch, cross, 0xE300 + r as u64)
    });
    let mut cells = cells.into_iter();
    let mut rows = Vec::new();
    for &arch in &archs {
        for &cross in &cross_levels {
            let mean = (0..requests)
                .map(|_| cells.next().expect("one cell per unit"))
                .sum::<f64>()
                / requests as f64;
            rows.push(Row {
                arch,
                cross_tasks: cross,
                completion_us: mean,
            });
        }
    }
    rows
}

/// Prints the E3 table.
pub fn print(scale: Scale) {
    print_with(scale, &ThreadPool::default());
}

/// Prints the E3 table, computed over `pool`.
pub fn print_with(scale: Scale, pool: &ThreadPool) {
    print_ctx(scale, pool, None);
}

/// [`print_with`] plus the shared `--trace-out` hook: the requests run
/// once; the same rows feed both the table and the metrics trace.
pub fn print_ctx(scale: Scale, pool: &ThreadPool, trace: Option<&std::path::Path>) {
    let rows = run_with(scale, pool);
    render(&rows);
    if let Some(path) = trace {
        crate::trace::write(path, &trace_ndjson(&rows));
    }
}

/// The metrics-trace body for [`print_ctx`].
fn trace_ndjson(rows: &[Row]) -> String {
    let mut m = quartz_obs::MetricsRegistry::new();
    m.inc("ext03.rows", rows.len() as u64);
    for r in rows {
        let key = r.arch.name().to_ascii_lowercase().replace([' ', '+'], "_");
        m.set_gauge(
            &format!("ext03.completion_us.{key}.x{}", r.cross_tasks),
            r.completion_us,
        );
    }
    m.to_ndjson()
}

/// Renders the computed rows as the E3 table.
fn render(rows: &[Row]) {
    crate::outln!(
        "Extension E3: the §1 request — 88 cache + 35 DB + 392 backend RPCs, sequential stages\n"
    );
    let cross_levels: Vec<usize> = {
        let mut v: Vec<usize> = rows.iter().map(|r| r.cross_tasks).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut headers: Vec<String> = vec!["Architecture".into()];
    headers.extend(
        cross_levels
            .iter()
            .map(|c| format!("{c} cross-task{} (µs)", if *c == 1 { "" } else { "s" })),
    );
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut archs: Vec<Arch> = rows.iter().map(|r| r.arch).collect();
    archs.dedup();
    let table: Vec<Vec<String>> = archs
        .iter()
        .map(|&a| {
            let mut cells = vec![a.name().to_string()];
            for &c in &cross_levels {
                let r = rows
                    .iter()
                    .find(|r| r.arch == a && r.cross_tasks == c)
                    .unwrap();
                cells.push(format!("{:.1}", r.completion_us));
            }
            cells
        })
        .collect();
    print_table(&headers_ref, &table);
    crate::outln!("\nEach stage waits for its slowest RPC, so the request completion tracks the *tail*: the architectures' mean-latency gap (Figure 17) widens into user-visible request time (§1's motivation).");
}
