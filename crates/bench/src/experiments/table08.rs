//! Table 8 — the §4.4 configurator: cost and latency comparison across
//! datacenter sizes and utilization levels.

use crate::table::{pct, print_table};
use crate::Scale;
use quartz_cost::catalog::PriceCatalog;
use quartz_cost::configurator::{configure, DatacenterSize, Row, Utilization};

/// The six configurator rows under the default 2014 catalog.
pub fn run(_scale: Scale) -> Vec<Row> {
    configure(&PriceCatalog::era_2014())
}

/// Pass-through for the shared `--jobs` plumbing: one configurator
/// evaluation is already sub-millisecond, so the pool is unused.
pub fn run_with(scale: Scale, _pool: &quartz_core::ThreadPool) -> Vec<Row> {
    run(scale)
}

/// Pass-through for the shared `--jobs` plumbing (see [`run_with`]).
pub fn print_with(scale: Scale, _pool: &quartz_core::ThreadPool) {
    print(scale);
}

/// [`print_with`] plus the shared `--trace-out` hook: also writes the
/// configurator rows as a metrics trace.
pub fn print_ctx(scale: Scale, pool: &quartz_core::ThreadPool, trace: Option<&std::path::Path>) {
    print_with(scale, pool);
    if let Some(path) = trace {
        crate::trace::write(path, &trace_ndjson(&run(scale)));
    }
}

/// The metrics-trace body for [`print_ctx`].
fn trace_ndjson(rows: &[Row]) -> String {
    let mut m = quartz_obs::MetricsRegistry::new();
    m.inc("table08.rows", rows.len() as u64);
    for r in rows {
        let key = format!(
            "{}.{}",
            size_name(r.size)
                .split(' ')
                .next()
                .unwrap()
                .to_ascii_lowercase(),
            util_name(r.utilization).to_ascii_lowercase()
        );
        m.set_gauge(&format!("table08.baseline_cost.{key}"), r.baseline_cost);
        m.set_gauge(&format!("table08.quartz_cost.{key}"), r.quartz_cost);
        m.set_gauge(
            &format!("table08.latency_reduction.{key}"),
            r.latency_reduction,
        );
    }
    m.to_ndjson()
}

fn size_name(s: DatacenterSize) -> &'static str {
    match s {
        DatacenterSize::Small => "Small (500)",
        DatacenterSize::Medium => "Medium (10K)",
        DatacenterSize::Large => "Large (100K)",
    }
}

fn util_name(u: Utilization) -> &'static str {
    match u {
        Utilization::Low => "Low",
        Utilization::High => "High",
    }
}

/// Prints Table 8.
pub fn print(scale: Scale) {
    crate::outln!("Table 8: approximate cost and latency comparison (network hardware only)\n");
    let rows: Vec<Vec<String>> = run(scale)
        .into_iter()
        .flat_map(|r| {
            [
                vec![
                    size_name(r.size).to_string(),
                    util_name(r.utilization).to_string(),
                    r.baseline.name().to_string(),
                    "-".to_string(),
                    format!("${:.0}", r.baseline_cost),
                ],
                vec![
                    String::new(),
                    String::new(),
                    r.quartz.name().to_string(),
                    pct(r.latency_reduction),
                    format!("${:.0}", r.quartz_cost),
                ],
            ]
        })
        .collect();
    print_table(
        &[
            "Datacenter size",
            "Utilization",
            "Topology",
            "Latency reduction",
            "Cost/server",
        ],
        &rows,
    );
    crate::outln!("\nPaper's rows: small $589→$633 (33%/50%), medium $544→$612 (20%/40%), large $525→$525 core (70%) and $525→$614 edge+core (74%).");
}
