//! Table 9 — summary of different network structures at the ~1k-server
//! scale: uncongested latency, switch count, wiring complexity, and path
//! diversity.
//!
//! Latency uses the paper's arithmetic: 0.5 µs per cut-through switch
//! hop and ~15 µs per relaying *server* (BCube). Wiring complexity is
//! the number of cross-rack cables. Path diversity is the number of
//! edge-disjoint paths between representative endpoints (computed
//! exactly with max-flow). The "switches (64-port)" column is the
//! closed-form count of 64-port devices for ~1k usable ports, as the
//! paper counts them.

use crate::table::print_table;
use crate::Scale;
use quartz_core::pool::ThreadPool;
use quartz_topology::builders::{
    bcube, jellyfish, leaf_spine, quartz_mesh, table9_fat_tree, two_tier,
};
use quartz_topology::metrics::{
    diameter_hops, latency_no_congestion_us, path_diversity, HopCounts,
};
use quartz_topology::route::RouteTable;

/// One structure's row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Structure name.
    pub name: &'static str,
    /// Worst-case hop composition (from the generated instance).
    pub hops: HopCounts,
    /// Uncongested latency, µs.
    pub latency_us: f64,
    /// 64-port switches for ~1k ports (paper's closed-form accounting).
    pub switches_64p: usize,
    /// Cross-rack cables in the generated instance.
    pub wiring: usize,
    /// For the mesh: physical cables after WDM collapsing (§3).
    pub wiring_with_wdm: Option<usize>,
    /// Edge-disjoint paths between representative endpoints.
    pub path_diversity: usize,
}

/// Builds and measures all five structures (over one worker per
/// hardware thread).
pub fn run(scale: Scale) -> Vec<Row> {
    run_with(scale, &ThreadPool::default())
}

/// Builds and measures all five structures over `pool`: each
/// structure's build + all-pairs shortest-path + max-flow analysis is
/// one independent unit.
pub fn run_with(scale: Scale, pool: &ThreadPool) -> Vec<Row> {
    // Quick scale shrinks each instance but keeps the structure.
    let paper = scale == Scale::Paper;
    pool.par_map(5, |i| build_row(i, paper))
}

/// Builds and measures structure `i` of the table's five rows.
fn build_row(i: usize, paper: bool) -> Row {
    match i {
        // 2-tier tree: 16 ToRs under one root (17 switches, 16 cross
        // links).
        0 => {
            let t = if paper {
                two_tier(16, 63, 1, 10.0, 40.0)
            } else {
                two_tier(8, 8, 1, 10.0, 40.0)
            };
            let table = RouteTable::all_shortest_paths(&t.net);
            let hops = diameter_hops(&t.net, &table);
            Row {
                name: "2-Tier Tree",
                hops,
                latency_us: latency_no_congestion_us(hops, 0.5, 15.0),
                switches_64p: 17,
                wiring: t.net.switch_to_switch_links(),
                wiring_with_wdm: None,
                path_diversity: path_diversity(&t.net, t.tors[0], t.tors[1]),
            }
        }
        // Fat-Tree: the paper's 1k-port instance is a 3-stage folded
        // Clos of 64-port switches (32 leaves × 32 hosts, 16 spines, 2
        // parallel links per leaf-spine pair = 48 switches, 1024 links,
        // diversity 32).
        1 => {
            let f = if paper {
                table9_fat_tree()
            } else {
                leaf_spine(4, 2, 4, 2, 10.0)
            };
            let table = RouteTable::all_shortest_paths(&f.net);
            let hops = diameter_hops(&f.net, &table);
            let last = *f.leaves.last().unwrap();
            Row {
                name: "Fat-Tree",
                hops,
                latency_us: latency_no_congestion_us(hops, 0.5, 15.0),
                switches_64p: f.leaves.len() + f.spines.len(),
                wiring: f.net.switch_to_switch_links(),
                wiring_with_wdm: None,
                path_diversity: path_diversity(&f.net, f.leaves[0], last),
            }
        }
        // BCube(32,1) (1024 hosts) or BCube(4,1) quick.
        2 => {
            let b = if paper {
                bcube(32, 1, 10.0)
            } else {
                bcube(4, 1, 10.0)
            };
            let table = RouteTable::all_shortest_paths(&b.net);
            let hops = diameter_hops(&b.net, &table);
            // Cross-rack cables: every level-1 (non-rack-local) server
            // link.
            let wiring = b.hosts.len();
            Row {
                name: "BCube",
                hops,
                latency_us: latency_no_congestion_us(hops, 0.5, 15.0),
                switches_64p: 32, // the paper counts the per-pod 32-port tier
                wiring,
                wiring_with_wdm: None,
                path_diversity: path_diversity(&b.net, b.hosts[0], *b.hosts.last().unwrap()),
            }
        }
        // Jellyfish: 24 switches, degree 20, 44 hosts each (1056 hosts).
        3 => {
            let j = if paper {
                jellyfish(24, 20, 44, 10.0, 10.0, 9)
            } else {
                jellyfish(8, 4, 4, 10.0, 10.0, 9)
            };
            let table = RouteTable::all_shortest_paths(&j.net);
            let hops = diameter_hops(&j.net, &table);
            Row {
                name: "Jellyfish",
                hops,
                latency_us: latency_no_congestion_us(hops, 0.5, 15.0),
                switches_64p: 24,
                wiring: j.net.switch_to_switch_links(),
                wiring_with_wdm: None,
                path_diversity: path_diversity(&j.net, j.switches[0], j.switches[1]),
            }
        }
        // Quartz mesh: 33 switches × 32 hosts = 1056 ports.
        _ => {
            let q = if paper {
                quartz_mesh(33, 32, 10.0, 10.0)
            } else {
                quartz_mesh(6, 2, 10.0, 10.0)
            };
            let table = RouteTable::all_shortest_paths(&q.net);
            let hops = diameter_hops(&q.net, &table);
            let m = q.switches.len();
            Row {
                name: "Mesh (Quartz)",
                hops,
                latency_us: latency_no_congestion_us(hops, 0.5, 15.0),
                switches_64p: 33,
                wiring: q.net.switch_to_switch_links(),
                // Two fiber cables per switch once channels ride the
                // ring (§3.5: a 33-switch ring needs two physical rings).
                wiring_with_wdm: Some(2 * m),
                path_diversity: path_diversity(&q.net, q.switches[0], q.switches[1]),
            }
        }
    }
}

/// Prints Table 9.
pub fn print(scale: Scale) {
    print_with(scale, &ThreadPool::default());
}

/// Prints Table 9, computed over `pool`.
pub fn print_with(scale: Scale, pool: &ThreadPool) {
    print_ctx(scale, pool, None);
}

/// [`print_with`] plus the shared `--trace-out` hook: the structures
/// build once; the same rows feed both the table and the metrics trace.
pub fn print_ctx(scale: Scale, pool: &ThreadPool, trace: Option<&std::path::Path>) {
    let rows = run_with(scale, pool);
    render(&rows);
    if let Some(path) = trace {
        crate::trace::write(path, &trace_ndjson(&rows));
    }
}

/// The metrics-trace body for [`print_ctx`].
fn trace_ndjson(rows: &[Row]) -> String {
    let mut m = quartz_obs::MetricsRegistry::new();
    m.inc("table09.rows", rows.len() as u64);
    for r in rows {
        let key = r
            .name
            .to_ascii_lowercase()
            .replace([' ', '(', ')'], "_")
            .replace('-', "_");
        let key = key.trim_matches('_');
        m.set_gauge(&format!("table09.latency_us.{key}"), r.latency_us);
        m.set_gauge(&format!("table09.wiring.{key}"), r.wiring as f64);
        m.set_gauge(
            &format!("table09.path_diversity.{key}"),
            r.path_diversity as f64,
        );
    }
    m.to_ndjson()
}

/// Renders the computed rows as the Table 9 table.
fn render(rows: &[Row]) {
    crate::outln!("Table 9: summary of different network structures (~1k server ports)\n");
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let hop_desc = if r.hops.server_hops > 0 {
                format!(
                    "{:.1} ({} sw + {} srv)",
                    r.latency_us, r.hops.switch_hops, r.hops.server_hops
                )
            } else {
                format!("{:.1} ({} sw hops)", r.latency_us, r.hops.switch_hops)
            };
            vec![
                r.name.to_string(),
                hop_desc,
                r.switches_64p.to_string(),
                match r.wiring_with_wdm {
                    Some(w) => format!("{} ({w} with WDMs)", r.wiring),
                    None => r.wiring.to_string(),
                },
                r.path_diversity.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "Network",
            "Latency w/o congestion (µs)",
            "# 64-port switches",
            "Wiring complexity",
            "Path diversity",
        ],
        &rows,
    );
    crate::outln!("\nPaper row values: 1.5µs/17/16/1, 1.5µs/48/1024/32, 16µs/32/960/2, 1.5µs/24/240/≤32, 1.0µs/33/528/32.");
}
