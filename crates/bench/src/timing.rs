//! A minimal wall-clock micro-benchmark harness for the `harness =
//! false` benches — no external dependency, stable output format:
//!
//! ```text
//! greedy_assignment/best_of_starts_m33   mean 1.234 ms  (min 1.201 ms, 405 iters)
//! ```
//!
//! Each measurement warms up once, then repeats the closure until a
//! time budget is spent (or an iteration cap is hit) and reports the
//! mean and minimum per-iteration wall time. `QUARTZ_BENCH_FAST=1`
//! shrinks the budget so the bench binaries can be smoke-tested in CI.
//!
//! Besides the human-readable line, every measurement is collected in a
//! process-wide buffer; [`write_json`] drains it into
//! `BENCH_<experiment>.json` (mean/min ns, iters, git rev — hand-rolled
//! JSON, no serde) when `QUARTZ_BENCH_JSON` is set, so successive PRs
//! can track the perf trajectory mechanically.

use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed measurement, as collected by [`measure`] / [`note`].
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Benchmark group label.
    pub group: String,
    /// Measurement name within the group.
    pub name: String,
    /// Mean per-iteration wall time, ns.
    pub mean_ns: f64,
    /// Fastest iteration, ns.
    pub min_ns: f64,
    /// Iterations timed.
    pub iters: u64,
}

/// Measurements accumulated since the last [`write_json`].
static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Per-measurement time budget.
fn budget() -> Duration {
    if std::env::var_os("QUARTZ_BENCH_FAST").is_some() {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(750)
    }
}

/// Formats a nanosecond quantity with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Runs `f` repeatedly and prints one result line labelled
/// `group/name`. The closure's result is `black_box`ed so the work
/// cannot be optimized away. Returns the collected [`Record`] so
/// callers can derive headline rates (see [`note_event_rate`]).
pub fn measure<T>(group: &str, name: &str, mut f: impl FnMut() -> T) -> Record {
    // One untimed warm-up (fills caches, faults pages, JITs nothing).
    black_box(f());
    let budget = budget();
    let mut iters = 0u64;
    let mut min_ns = f64::INFINITY;
    let started = Instant::now();
    let mut spent = Duration::ZERO;
    while spent < budget && iters < 1_000_000 {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed();
        min_ns = min_ns.min(dt.as_nanos() as f64);
        iters += 1;
        spent = started.elapsed();
    }
    let mean_ns = spent.as_nanos() as f64 / iters as f64;
    println!(
        "{group}/{name:<32} mean {:>10}  (min {}, {iters} iters)",
        fmt_ns(mean_ns),
        fmt_ns(min_ns),
    );
    note(group, name, mean_ns, min_ns, iters);
    Record {
        group: group.to_string(),
        name: name.to_string(),
        mean_ns,
        min_ns,
        iters,
    }
}

/// Derives the events-per-second headline from a [`measure`] record
/// whose iterations each processed `events_per_iter` scheduler events:
/// prints `X.XX M events/s` (plus the peak from the fastest iteration)
/// and records the per-event cost under the `per_event` group, so the
/// BENCH json keeps its time-quantity schema — events/sec is
/// `1e9 / mean_ns` of the `per_event` record, and `iters` holds the
/// events per iteration.
pub fn note_event_rate(name: &str, events_per_iter: u64, r: &Record) {
    let ev = events_per_iter as f64;
    let mean_rate = ev * 1e9 / r.mean_ns;
    let peak_rate = ev * 1e9 / r.min_ns;
    println!(
        "per_event/{name:<32} {:>7.2} M events/s  (peak {:.2} M, {events_per_iter} events/iter)",
        mean_rate / 1e6,
        peak_rate / 1e6,
    );
    note(
        "per_event",
        name,
        r.mean_ns / ev,
        r.min_ns / ev,
        events_per_iter,
    );
}

/// Times one closure with the process wall clock and returns its result
/// plus the elapsed nanoseconds.
///
/// This is the only sanctioned wall-clock entry point outside this
/// module: the `wall-clock` lint rule (`quartz-lint`) confines
/// `Instant`/`SystemTime` to this file so no timing source can leak
/// into experiment output.
pub fn wall_timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_nanos() as f64)
}

/// The process monotonic clock as plain nanoseconds since the first
/// call, as an injectable `fn() -> u64`.
///
/// This is the clock source benches hand to
/// `quartz_netsim::shard::ShardedSim::set_clock` for the per-domain
/// busy/idle breakdown: the engine itself never reads wall time (its
/// default clock is frozen at zero, and the `wall-clock` lint rule
/// confines `Instant` to this module), so wall time enters a sharded
/// run only when a harness explicitly injects this function.
pub fn monotonic_ns() -> u64 {
    static EPOCH: Mutex<Option<Instant>> = Mutex::new(None);
    let mut epoch = EPOCH.lock().unwrap();
    let t0 = *epoch.get_or_insert_with(Instant::now);
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Named-phase wall-time accumulator (see [`phase_timed`]).
static PHASES: Mutex<quartz_obs::Phases> = Mutex::new(quartz_obs::Phases::new());

/// Runs `f` and attributes its wall time to the named phase.
///
/// Phases are the coarse profiling layer over `quartz-obs`: experiments
/// wrap their major stages (`"fig06.grid"`, `"fig06.dynamic"`, …) so
/// the per-binary wall time in `BENCH_<name>.json` decomposes into
/// stage budgets. Like every wall-clock reading, the timing lives in
/// this sanctuary module only; phase *accumulation* is plain arithmetic
/// in `quartz_obs::Phases` and never touches experiment output.
pub fn phase_timed<T>(phase: &str, f: impl FnOnce() -> T) -> T {
    let (out, ns) = wall_timed(f);
    PHASES.lock().unwrap().add(phase, ns);
    out
}

/// Drains the phase accumulator into the measurement buffer, one record
/// per phase under the `phase` group (`mean_ns` = `min_ns` = total /
/// calls, `iters` = calls; total = mean × iters), so the next
/// [`write_json`] folds the phase breakdown into
/// `BENCH_<experiment>.json`.
pub fn flush_phases() {
    for p in PHASES.lock().unwrap().take() {
        let per_call = p.total_ns / p.calls as f64;
        note("phase", &p.name, per_call, per_call, p.calls);
    }
}

/// Records an externally timed measurement (e.g. an experiment binary's
/// total wall time) for the next [`write_json`], without printing.
pub fn note(group: &str, name: &str, mean_ns: f64, min_ns: f64, iters: u64) {
    RECORDS.lock().unwrap().push(Record {
        group: group.to_string(),
        name: name.to_string(),
        mean_ns,
        min_ns,
        iters,
    });
}

/// The working tree's `git rev-parse --short HEAD`, or `"unknown"`.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Escapes `s` for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Drains every measurement collected so far into
/// `BENCH_<experiment>.json` and returns the path written.
///
/// Gated on the `QUARTZ_BENCH_JSON` environment variable: unset → no
/// file, returns `None` (the records stay buffered); set to `1` or the
/// empty string → the current directory; anything else → that
/// directory (created if missing). `jobs` records the worker count the
/// run used, if the caller threads one through.
pub fn write_json(experiment: &str, jobs: Option<usize>) -> Option<PathBuf> {
    let dir = match std::env::var("QUARTZ_BENCH_JSON") {
        Ok(v) if v.is_empty() || v == "1" => PathBuf::from("."),
        Ok(v) => PathBuf::from(v),
        Err(_) => return None,
    };
    std::fs::create_dir_all(&dir).ok()?;
    let records = std::mem::take(&mut *RECORDS.lock().unwrap());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"experiment\": \"{}\",\n",
        json_escape(experiment)
    ));
    json.push_str(&format!(
        "  \"git_rev\": \"{}\",\n",
        json_escape(&git_rev())
    ));
    if let Some(jobs) = jobs {
        json.push_str(&format!("  \"jobs\": {jobs},\n"));
    }
    json.push_str("  \"measurements\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iters\": {}}}{}\n",
            json_escape(&r.group),
            json_escape(&r.name),
            r.mean_ns,
            r.min_ns,
            r.iters,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = dir.join(format!("BENCH_{experiment}.json"));
    std::fs::write(&path, json).ok()?;
    eprintln!("bench json: {}", path.display());
    Some(path)
}
