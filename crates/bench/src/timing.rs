//! A minimal wall-clock micro-benchmark harness for the `harness =
//! false` benches — no external dependency, stable output format:
//!
//! ```text
//! greedy_assignment/best_of_starts_m33   mean 1.234 ms  (min 1.201 ms, 405 iters)
//! ```
//!
//! Each measurement warms up once, then repeats the closure until a
//! time budget is spent (or an iteration cap is hit) and reports the
//! mean and minimum per-iteration wall time. `QUARTZ_BENCH_FAST=1`
//! shrinks the budget so the bench binaries can be smoke-tested in CI.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-measurement time budget.
fn budget() -> Duration {
    if std::env::var_os("QUARTZ_BENCH_FAST").is_some() {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(750)
    }
}

/// Formats a nanosecond quantity with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Runs `f` repeatedly and prints one result line labelled
/// `group/name`. The closure's result is `black_box`ed so the work
/// cannot be optimized away.
pub fn measure<T>(group: &str, name: &str, mut f: impl FnMut() -> T) {
    // One untimed warm-up (fills caches, faults pages, JITs nothing).
    black_box(f());
    let budget = budget();
    let mut iters = 0u64;
    let mut min_ns = f64::INFINITY;
    let started = Instant::now();
    let mut spent = Duration::ZERO;
    while spent < budget && iters < 1_000_000 {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed();
        min_ns = min_ns.min(dt.as_nanos() as f64);
        iters += 1;
        spent = started.elapsed();
    }
    let mean_ns = spent.as_nanos() as f64 / iters as f64;
    println!(
        "{group}/{name:<32} mean {:>10}  (min {}, {iters} iters)",
        fmt_ns(mean_ns),
        fmt_ns(min_ns),
    );
}
