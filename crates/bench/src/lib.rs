//! # quartz-bench
//!
//! The experiment harness: one module (and one binary) per table and
//! figure of the paper's evaluation. Each binary prints the same rows or
//! series the paper reports, so `cargo run -p quartz-bench --bin
//! fig17_global_latency` regenerates Figure 17 and so on. EXPERIMENTS.md
//! in the repository root records paper-vs-measured for every one.
//!
//! Every experiment takes a [`Scale`]: `Paper` runs the full
//! configuration; `Quick` shrinks trial counts and simulated time so the
//! whole suite can run inside the integration tests.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod table;
pub mod timing;
pub mod trace;

/// Experiment fidelity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Full, paper-fidelity parameters (seconds to a few minutes).
    Paper,
    /// Reduced trials/time for CI and integration tests.
    Quick,
}

impl Scale {
    /// Parses `--quick` from process args.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }
}

/// Parses `--jobs N` (or `--jobs=N`) from process args. Absent or `0`
/// means one worker per hardware thread; `--jobs 1` is the sequential
/// pre-pool behavior.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--jobs" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            if let Ok(n) = v.parse() {
                return n;
            }
        }
    }
    0
}

/// The worker pool the process args ask for (see [`jobs_from_args`]).
pub fn pool_from_args() -> quartz_core::ThreadPool {
    quartz_core::ThreadPool::new(jobs_from_args())
}

/// Shared `main` for the experiment binaries: runs `print_fn` at the
/// arg-selected scale over the arg-selected pool, passing through the
/// arg-selected `--trace-out` path (see [`trace::trace_out_from_args`]),
/// timing the whole run, and emits `BENCH_<name>.json` — including any
/// [`timing::phase_timed`] breakdown — when `QUARTZ_BENCH_JSON` is set
/// (see [`timing::write_json`]).
pub fn run_bin(
    name: &str,
    print_fn: impl FnOnce(Scale, &quartz_core::ThreadPool, Option<&std::path::Path>),
) {
    let scale = Scale::from_args();
    let pool = pool_from_args();
    let trace_out = trace::trace_out_from_args();
    let ((), wall_ns) = timing::wall_timed(|| print_fn(scale, &pool, trace_out.as_deref()));
    timing::note(
        name,
        match scale {
            Scale::Paper => "total_paper",
            Scale::Quick => "total_quick",
        },
        wall_ns,
        wall_ns,
        1,
    );
    timing::flush_phases();
    timing::write_json(name, Some(pool.threads()));
}
