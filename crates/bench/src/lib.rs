//! # quartz-bench
//!
//! The experiment harness: one module (and one binary) per table and
//! figure of the paper's evaluation. Each binary prints the same rows or
//! series the paper reports, so `cargo run -p quartz-bench --bin
//! fig17_global_latency` regenerates Figure 17 and so on. EXPERIMENTS.md
//! in the repository root records paper-vs-measured for every one.
//!
//! Every experiment takes a [`Scale`]: `Paper` runs the full
//! configuration; `Quick` shrinks trial counts and simulated time so the
//! whole suite can run inside the integration tests.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod table;
pub mod timing;

/// Experiment fidelity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Full, paper-fidelity parameters (seconds to a few minutes).
    Paper,
    /// Reduced trials/time for CI and integration tests.
    Quick,
}

impl Scale {
    /// Parses `--quick` from process args.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }
}
