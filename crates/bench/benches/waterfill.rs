//! Max-min solver performance at the paper's full 33 × 32 mesh scale.

use criterion::{criterion_group, criterion_main, Criterion};
use quartz_core::routing::RoutingPolicy;
use quartz_flowsim::fabric::{Fabric, QuartzFabric};
use quartz_flowsim::matrix::{incast, random_permutation};
use quartz_flowsim::waterfill::max_min_rates;
use std::hint::black_box;

fn bench_waterfill(c: &mut Criterion) {
    let mut g = c.benchmark_group("waterfill");
    let fabric = QuartzFabric::paper(RoutingPolicy::vlb(0.5));
    let perm = random_permutation(fabric.hosts(), 1);
    let p = fabric.problem(&perm);
    g.bench_function("permutation_1056_hosts_vlb", |b| {
        b.iter(|| black_box(max_min_rates(black_box(&p))))
    });
    let inc = incast(fabric.hosts(), 10, 1);
    let p = fabric.problem(&inc);
    g.bench_function("incast10_10560_flows_vlb", |b| {
        b.iter(|| black_box(max_min_rates(black_box(&p))))
    });
    g.finish();
}

criterion_group!(benches, bench_waterfill);
criterion_main!(benches);
