//! Max-min solver performance at the paper's full 33 × 32 mesh scale.

use quartz_bench::timing::measure;
use quartz_core::routing::RoutingPolicy;
use quartz_flowsim::fabric::{Fabric, QuartzFabric};
use quartz_flowsim::matrix::{incast, random_permutation};
use quartz_flowsim::waterfill::max_min_rates;
use std::hint::black_box;

fn main() {
    let fabric = QuartzFabric::paper(RoutingPolicy::vlb(0.5));
    let perm = random_permutation(fabric.hosts(), 1);
    let p = fabric.problem(&perm);
    measure("waterfill", "permutation_1056_hosts_vlb", || {
        max_min_rates(black_box(&p))
    });
    let inc = incast(fabric.hosts(), 10, 1);
    let p = fabric.problem(&inc);
    measure("waterfill", "incast10_10560_flows_vlb", || {
        max_min_rates(black_box(&p))
    });

    quartz_bench::timing::write_json("waterfill", None);
}
