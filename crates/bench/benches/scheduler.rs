//! A/B wall time of the two event engines — the timing wheel against
//! the reference binary heap — on the Figure 17 workload, the busiest
//! simulation in the harness (64-host composite topologies, Poisson
//! scatter/gather load). Both engines drain events in the same order
//! (asserted below before timing), so any delta is pure engine cost.

use quartz_bench::experiments::fig17::{simulate_with_scheduler, Arch, Workload};
use quartz_bench::timing::{measure, note_event_rate};
use quartz_core::rng::StdRng;
use quartz_netsim::sched::{BinaryHeapScheduler, Scheduler, SchedulerKind, TimingWheel};
use quartz_netsim::time::SimTime;
use std::hint::black_box;

/// Pops drained per iteration of the synthetic churn workload.
const CHURN_EVENTS: u64 = 100_000;

/// Raw engine churn with a simulator-shaped time profile: seeded pushes
/// mostly a few hundred ns ahead of the drain point (per-hop arrivals),
/// a slice ~10 µs out (generator gaps), and a far tail (retransmission
/// timers), every pop respawning until exactly [`CHURN_EVENTS`] pops
/// have drained. Returns a checksum of the pop order so the work can't
/// be optimized away (and so both engines can be asserted identical).
fn churn<S: Scheduler<u32>>(mut s: S, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let next_time = |now: SimTime, rng: &mut StdRng| {
        now + match rng.random_range(0..10) {
            0..=6 => rng.random_range(64..1_000) as u64,
            7 | 8 => rng.random_range(1_000..20_000) as u64,
            _ => rng.random_range(100_000..2_000_000) as u64,
        }
    };
    for i in 0..1_024u32 {
        let t = next_time(SimTime::ZERO, &mut rng);
        s.push(t, i);
    }
    let mut pops = 0u64;
    let mut checksum = 0u64;
    while let Some((t, item)) = s.pop() {
        pops += 1;
        checksum = checksum
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(t.ns() ^ u64::from(item));
        if pops + (s.len() as u64) < CHURN_EVENTS {
            s.push(next_time(t, &mut rng), item);
        }
    }
    debug_assert_eq!(pops, CHURN_EVENTS);
    checksum
}

/// One fig17 cell: 2 gather tasks on the paper's best architecture,
/// 1 ms of simulated time.
fn cell(kind: SchedulerKind) -> f64 {
    simulate_with_scheduler(
        Arch::QuartzInEdgeAndCore,
        Workload::Gather,
        black_box(2),
        1,
        42,
        kind,
    )
}

/// The same cell on the architecture with the deepest paths (three-tier
/// tree through CCS cores), scatter/gather for two-way traffic.
fn cell_tree(kind: SchedulerKind) -> f64 {
    simulate_with_scheduler(
        Arch::ThreeTier,
        Workload::ScatterGather,
        black_box(2),
        1,
        42,
        kind,
    )
}

fn main() {
    // The ordering contract first: identical results, bit for bit.
    assert_eq!(
        cell(SchedulerKind::TimingWheel).to_bits(),
        cell(SchedulerKind::BinaryHeap).to_bits(),
        "engines must produce bit-identical fig17 latencies"
    );
    assert_eq!(
        cell_tree(SchedulerKind::TimingWheel).to_bits(),
        cell_tree(SchedulerKind::BinaryHeap).to_bits(),
        "engines must produce bit-identical fig17 latencies"
    );

    assert_eq!(
        churn(TimingWheel::new(), 7),
        churn(BinaryHeapScheduler::new(), 7),
        "engines must drain the synthetic churn in the same order"
    );

    // Raw engine throughput, free of simulator bookkeeping: how many
    // events per second each engine pushes + pops on its own.
    let rec = measure("scheduler", "wheel_churn_100k", || {
        churn(TimingWheel::new(), black_box(7))
    });
    note_event_rate("wheel_churn_100k", CHURN_EVENTS, &rec);
    let rec = measure("scheduler", "heap_churn_100k", || {
        churn(BinaryHeapScheduler::new(), black_box(7))
    });
    note_event_rate("heap_churn_100k", CHURN_EVENTS, &rec);

    measure("scheduler", "wheel_fig17_gather", || {
        cell(SchedulerKind::TimingWheel)
    });
    measure("scheduler", "heap_fig17_gather", || {
        cell(SchedulerKind::BinaryHeap)
    });
    measure("scheduler", "wheel_fig17_scatter_gather_tree", || {
        cell_tree(SchedulerKind::TimingWheel)
    });
    measure("scheduler", "heap_fig17_scatter_gather_tree", || {
        cell_tree(SchedulerKind::BinaryHeap)
    });

    quartz_bench::timing::write_json("scheduler", None);
}
