//! A/B wall time of the two event engines — the timing wheel against
//! the reference binary heap — on the Figure 17 workload, the busiest
//! simulation in the harness (64-host composite topologies, Poisson
//! scatter/gather load). Both engines drain events in the same order
//! (asserted below before timing), so any delta is pure engine cost.

use quartz_bench::experiments::fig17::{simulate_with_scheduler, Arch, Workload};
use quartz_bench::timing::measure;
use quartz_netsim::sched::SchedulerKind;
use std::hint::black_box;

/// One fig17 cell: 2 gather tasks on the paper's best architecture,
/// 1 ms of simulated time.
fn cell(kind: SchedulerKind) -> f64 {
    simulate_with_scheduler(
        Arch::QuartzInEdgeAndCore,
        Workload::Gather,
        black_box(2),
        1,
        42,
        kind,
    )
}

/// The same cell on the architecture with the deepest paths (three-tier
/// tree through CCS cores), scatter/gather for two-way traffic.
fn cell_tree(kind: SchedulerKind) -> f64 {
    simulate_with_scheduler(
        Arch::ThreeTier,
        Workload::ScatterGather,
        black_box(2),
        1,
        42,
        kind,
    )
}

fn main() {
    // The ordering contract first: identical results, bit for bit.
    assert_eq!(
        cell(SchedulerKind::TimingWheel).to_bits(),
        cell(SchedulerKind::BinaryHeap).to_bits(),
        "engines must produce bit-identical fig17 latencies"
    );
    assert_eq!(
        cell_tree(SchedulerKind::TimingWheel).to_bits(),
        cell_tree(SchedulerKind::BinaryHeap).to_bits(),
        "engines must produce bit-identical fig17 latencies"
    );

    measure("scheduler", "wheel_fig17_gather", || {
        cell(SchedulerKind::TimingWheel)
    });
    measure("scheduler", "heap_fig17_gather", || {
        cell(SchedulerKind::BinaryHeap)
    });
    measure("scheduler", "wheel_fig17_scatter_gather_tree", || {
        cell_tree(SchedulerKind::TimingWheel)
    });
    measure("scheduler", "heap_fig17_scatter_gather_tree", || {
        cell_tree(SchedulerKind::BinaryHeap)
    });

    quartz_bench::timing::write_json("scheduler", None);
}
