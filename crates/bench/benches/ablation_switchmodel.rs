//! Ablation of the cut-through switch model (a DESIGN.md-called-out
//! design choice): the same workload on the same topology with (a) the
//! paper's mixed model, (b) everything store-and-forward, (c) everything
//! ideal. The latency *results* differ (that is the paper's point); this
//! bench shows the engine's wall-clock cost is insensitive to the model,
//! so using the faithful model costs nothing.

use criterion::{criterion_group, criterion_main, Criterion};
use quartz_netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz_netsim::switch::{LatencyModel, CISCO_NEXUS_7000};
use quartz_netsim::time::SimTime;
use quartz_topology::builders::three_tier;
use std::hint::black_box;

fn run(latency: LatencyModel) -> f64 {
    let t = three_tier(4, 2, 2, 2, 10.0, 40.0);
    let mut sim = Simulator::new(
        t.net.clone(),
        SimConfig {
            latency,
            ..SimConfig::default()
        },
    );
    let stop = SimTime::from_ms(2);
    for (i, &h) in t.hosts.iter().enumerate().skip(1) {
        sim.add_flow(
            t.hosts[0],
            h,
            400,
            FlowKind::Poisson {
                mean_gap_ns: 8_000.0,
                stop,
                respond: false,
            },
            i as u32,
            SimTime::ZERO,
        );
    }
    sim.run(SimTime::from_ms(4));
    sim.stats().summary(1).mean_ns
}

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("switch_model_ablation");
    g.bench_function("paper_mixed", |b| {
        b.iter(|| black_box(run(LatencyModel::paper())))
    });
    let all_sf = LatencyModel {
        edge: CISCO_NEXUS_7000,
        ..LatencyModel::paper()
    };
    g.bench_function("all_store_and_forward", |b| {
        b.iter(|| black_box(run(all_sf)))
    });
    g.bench_function("ideal_zero_latency", |b| {
        b.iter(|| black_box(run(LatencyModel::ideal())))
    });
    g.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
