//! Ablation of the cut-through switch model (a DESIGN.md-called-out
//! design choice): the same workload on the same topology with (a) the
//! paper's mixed model, (b) everything store-and-forward, (c) everything
//! ideal. The latency *results* differ (that is the paper's point); this
//! bench shows the engine's wall-clock cost is insensitive to the model,
//! so using the faithful model costs nothing.

use quartz_bench::timing::measure;
use quartz_netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz_netsim::switch::{LatencyModel, CISCO_NEXUS_7000};
use quartz_netsim::time::SimTime;
use quartz_topology::builders::three_tier;

fn run(latency: LatencyModel) -> f64 {
    let t = three_tier(4, 2, 2, 2, 10.0, 40.0);
    let mut sim = Simulator::new(
        t.net.clone(),
        SimConfig {
            latency,
            ..SimConfig::default()
        },
    );
    let stop = SimTime::from_ms(2);
    for (i, &h) in t.hosts.iter().enumerate().skip(1) {
        sim.add_flow(
            t.hosts[0],
            h,
            400,
            FlowKind::Poisson {
                mean_gap_ns: 8_000.0,
                stop,
                respond: false,
            },
            i as u32,
            SimTime::ZERO,
        );
    }
    sim.run(SimTime::from_ms(4));
    sim.stats().summary(1).mean_ns
}

fn main() {
    measure("switch_model_ablation", "paper_mixed", || {
        run(LatencyModel::paper())
    });
    let all_sf = LatencyModel {
        edge: CISCO_NEXUS_7000,
        ..LatencyModel::paper()
    };
    measure("switch_model_ablation", "all_store_and_forward", || {
        run(all_sf)
    });
    measure("switch_model_ablation", "ideal_zero_latency", || {
        run(LatencyModel::ideal())
    });

    quartz_bench::timing::write_json("ablation_switchmodel", None);
}
