//! Routing-table construction cost: all-shortest-paths ECMP DAGs over the
//! evaluation topologies.

use criterion::{criterion_group, criterion_main, Criterion};
use quartz_topology::builders::{fat_tree, jellyfish, quartz_mesh, three_tier};
use quartz_topology::route::RouteTable;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("route_tables");
    let ft = fat_tree(8, 10.0);
    g.bench_function("fat_tree_k8", |b| {
        b.iter(|| black_box(RouteTable::all_shortest_paths(&ft.net)))
    });
    let jf = jellyfish(32, 6, 4, 10.0, 10.0, 3);
    g.bench_function("jellyfish_32sw", |b| {
        b.iter(|| black_box(RouteTable::all_shortest_paths(&jf.net)))
    });
    let q = quartz_mesh(33, 4, 10.0, 10.0);
    g.bench_function("quartz_mesh_33", |b| {
        b.iter(|| black_box(RouteTable::all_shortest_paths(&q.net)))
    });
    let t3 = three_tier(8, 2, 4, 2, 10.0, 40.0);
    g.bench_function("three_tier_16racks", |b| {
        b.iter(|| black_box(RouteTable::all_shortest_paths(&t3.net)))
    });
    g.finish();
}

fn bench_path_diversity(c: &mut Criterion) {
    use quartz_topology::metrics::path_diversity;
    let q = quartz_mesh(33, 1, 10.0, 10.0);
    c.bench_function("path_diversity_mesh33", |b| {
        b.iter(|| black_box(path_diversity(&q.net, q.switches[0], q.switches[16])))
    });
}

criterion_group!(benches, bench_tables, bench_path_diversity);
criterion_main!(benches);
