//! Routing-table construction cost: all-shortest-paths ECMP DAGs over the
//! evaluation topologies.

use quartz_bench::timing::measure;
use quartz_topology::builders::{fat_tree, jellyfish, quartz_mesh, three_tier};
use quartz_topology::metrics::path_diversity;
use quartz_topology::route::RouteTable;

fn main() {
    let ft = fat_tree(8, 10.0);
    measure("route_tables", "fat_tree_k8", || {
        RouteTable::all_shortest_paths(&ft.net)
    });
    let jf = jellyfish(32, 6, 4, 10.0, 10.0, 3);
    measure("route_tables", "jellyfish_32sw", || {
        RouteTable::all_shortest_paths(&jf.net)
    });
    let q = quartz_mesh(33, 4, 10.0, 10.0);
    measure("route_tables", "quartz_mesh_33", || {
        RouteTable::all_shortest_paths(&q.net)
    });
    let t3 = three_tier(8, 2, 4, 2, 10.0, 40.0);
    measure("route_tables", "three_tier_16racks", || {
        RouteTable::all_shortest_paths(&t3.net)
    });

    let q = quartz_mesh(33, 1, 10.0, 10.0);
    measure("route_tables", "path_diversity_mesh33", || {
        path_diversity(&q.net, q.switches[0], q.switches[16])
    });

    quartz_bench::timing::write_json("routing_tables", None);
}
