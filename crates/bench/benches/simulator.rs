//! Event throughput of the discrete-event simulator: how many simulated
//! packets per wall-clock second the engine sustains on a loaded mesh.

use quartz_bench::timing::{measure, note_event_rate};
use quartz_netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz_netsim::time::SimTime;
use quartz_netsim::transport::TcpVariant;
use quartz_topology::builders::quartz_mesh;
use quartz_topology::graph::{Network, SwitchRole};
use std::hint::black_box;

/// One 2 ms run of a 4-switch mesh with 16 hosts at ~40 % load; returns
/// `(packets delivered, events processed)` for the throughput
/// annotations.
fn run_once(seed: u64) -> (u64, u64) {
    let q = quartz_mesh(4, 4, 10.0, 10.0);
    let mut sim = Simulator::new(
        q.net.clone(),
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    let stop = SimTime::from_ms(2);
    for (i, &src) in q.hosts.iter().enumerate() {
        let dst = q.hosts[(i + 5) % q.hosts.len()];
        sim.add_flow(
            src,
            dst,
            400,
            FlowKind::Poisson {
                mean_gap_ns: 800.0,
                stop,
                respond: false,
            },
            0,
            SimTime::ZERO,
        );
    }
    sim.run(SimTime::from_ms(4));
    (sim.stats().delivered, sim.events_processed())
}

fn main() {
    let (packets, events) = run_once(1);
    println!("simulator: {packets} packets, {events} events per iteration");
    let rec = measure("simulator", "mesh_2ms_40pct_load", || {
        run_once(black_box(1))
    });
    // The headline rate: scheduler events retired per wall-clock second
    // on the flagship scenario (generation, per-hop arrivals, batched
    // drains — everything the engine pops or drains counts once).
    note_event_rate("mesh_2ms_40pct_load", events, &rec);

    measure("simulator", "construction_64_hosts", || {
        let q = quartz_mesh(16, 4, 10.0, 10.0);
        Simulator::new(q.net, SimConfig::default())
    });

    // One 1 MB Reno transfer over a dumbbell: measures the whole
    // transport state machine + event loop.
    measure("simulator", "transport_reno_1mb_dumbbell", || {
        let mut net = Network::new();
        let sw = net.add_switch(SwitchRole::TopOfRack, Some(0));
        let h1 = net.add_host(Some(0));
        let h2 = net.add_host(Some(0));
        net.connect(h1, sw, 10.0);
        net.connect(h2, sw, 10.0);
        let mut sim = Simulator::new(net, SimConfig::default());
        sim.add_flow(
            h1,
            h2,
            1_000,
            FlowKind::Transport {
                total_bytes: 1_000_000,
                variant: TcpVariant::Reno,
            },
            0,
            SimTime::ZERO,
        );
        sim.run(SimTime::from_ms(50));
        sim.stats().summary(0).count
    });

    quartz_bench::timing::write_json("simulator", None);
}
