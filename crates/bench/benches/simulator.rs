//! Event throughput of the discrete-event simulator: how many simulated
//! packets per wall-clock second the engine sustains on a loaded mesh.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use quartz_netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz_netsim::time::SimTime;
use quartz_topology::builders::quartz_mesh;
use std::hint::black_box;

/// One 2 ms run of a 4-switch mesh with 16 hosts at ~40 % load; returns
/// packets delivered (for the throughput annotation).
fn run_once(seed: u64) -> u64 {
    let q = quartz_mesh(4, 4, 10.0, 10.0);
    let mut sim = Simulator::new(
        q.net.clone(),
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    let stop = SimTime::from_ms(2);
    for (i, &src) in q.hosts.iter().enumerate() {
        let dst = q.hosts[(i + 5) % q.hosts.len()];
        sim.add_flow(
            src,
            dst,
            400,
            FlowKind::Poisson {
                mean_gap_ns: 800.0,
                stop,
                respond: false,
            },
            0,
            SimTime::ZERO,
        );
    }
    sim.run(SimTime::from_ms(4));
    sim.stats().delivered
}

fn bench_engine(c: &mut Criterion) {
    let packets = run_once(1);
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(packets));
    g.bench_function("mesh_2ms_40pct_load", |b| {
        b.iter(|| black_box(run_once(black_box(1))))
    });
    g.finish();
}

fn bench_construction(c: &mut Criterion) {
    c.bench_function("simulator_construction_64_hosts", |b| {
        b.iter(|| {
            let q = quartz_mesh(16, 4, 10.0, 10.0);
            black_box(Simulator::new(q.net, SimConfig::default()))
        })
    });
}

criterion_group!(benches, bench_engine, bench_construction, bench_transport);
criterion_main!(benches);

fn bench_transport(c: &mut criterion::Criterion) {
    use quartz_netsim::transport::TcpVariant;
    use quartz_topology::graph::{Network, SwitchRole};
    // One 1 MB Reno transfer over a dumbbell: measures the whole
    // transport state machine + event loop.
    c.bench_function("transport_reno_1mb_dumbbell", |b| {
        b.iter(|| {
            let mut net = Network::new();
            let sw = net.add_switch(SwitchRole::TopOfRack, Some(0));
            let h1 = net.add_host(Some(0));
            let h2 = net.add_host(Some(0));
            net.connect(h1, sw, 10.0);
            net.connect(h2, sw, 10.0);
            let mut sim = Simulator::new(net, SimConfig::default());
            sim.add_flow(
                h1,
                h2,
                1_000,
                FlowKind::Transport {
                    total_bytes: 1_000_000,
                    variant: TcpVariant::Reno,
                },
                0,
                SimTime::ZERO,
            );
            sim.run(SimTime::from_ms(50));
            black_box(sim.stats().summary(0).count)
        })
    });
}
