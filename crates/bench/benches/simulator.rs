//! Event throughput of the discrete-event simulator: how many simulated
//! packets per wall-clock second the engine sustains on a loaded mesh,
//! plus the sharded engine on Figure 15 composites (including the
//! ≥10⁴-host scale target).

use quartz_bench::timing::{measure, monotonic_ns, note, note_event_rate, wall_timed};
use quartz_core::pool::ThreadPool;
use quartz_netsim::shard::ShardedSim;
use quartz_netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz_netsim::time::SimTime;
use quartz_netsim::transport::TcpVariant;
use quartz_topology::builders::{quartz_in_core, quartz_mesh};
use quartz_topology::graph::{Network, SwitchRole};
use std::hint::black_box;

/// One 2 ms run of a 4-switch mesh with 16 hosts at ~40 % load; returns
/// `(packets delivered, events processed)` for the throughput
/// annotations.
fn run_once(seed: u64) -> (u64, u64) {
    let q = quartz_mesh(4, 4, 10.0, 10.0);
    let mut sim = Simulator::new(
        q.net.clone(),
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    let stop = SimTime::from_ms(2);
    for (i, &src) in q.hosts.iter().enumerate() {
        let dst = q.hosts[(i + 5) % q.hosts.len()];
        sim.add_flow(
            src,
            dst,
            400,
            FlowKind::Poisson {
                mean_gap_ns: 800.0,
                stop,
                respond: false,
            },
            0,
            SimTime::ZERO,
        );
    }
    sim.run(SimTime::from_ms(4));
    (sim.stats().delivered, sim.events_processed())
}

fn main() {
    let (packets, events) = run_once(1);
    println!("simulator: {packets} packets, {events} events per iteration");
    let rec = measure("simulator", "mesh_2ms_40pct_load", || {
        run_once(black_box(1))
    });
    // The headline rate: scheduler events retired per wall-clock second
    // on the flagship scenario (generation, per-hop arrivals, batched
    // drains — everything the engine pops or drains counts once).
    note_event_rate("mesh_2ms_40pct_load", events, &rec);

    measure("simulator", "construction_64_hosts", || {
        let q = quartz_mesh(16, 4, 10.0, 10.0);
        Simulator::new(q.net, SimConfig::default())
    });

    // One 1 MB Reno transfer over a dumbbell: measures the whole
    // transport state machine + event loop.
    measure("simulator", "transport_reno_1mb_dumbbell", || {
        let mut net = Network::new();
        let sw = net.add_switch(SwitchRole::TopOfRack, Some(0));
        let h1 = net.add_host(Some(0));
        let h2 = net.add_host(Some(0));
        net.connect(h1, sw, 10.0);
        net.connect(h2, sw, 10.0);
        let mut sim = Simulator::new(net, SimConfig::default());
        sim.add_flow(
            h1,
            h2,
            1_000,
            FlowKind::Transport {
                total_bytes: 1_000_000,
                variant: TcpVariant::Reno,
            },
            0,
            SimTime::ZERO,
        );
        sim.run(SimTime::from_ms(50));
        sim.stats().summary(0).count
    });

    bench_composite_4dom();
    bench_composite_10k_hosts();

    quartz_bench::timing::write_json("simulator", None);
}

/// One sharded run of a 4-pod Quartz-in-core composite (64 hosts) with
/// pod-crossing RPC + Poisson traffic; returns the sim for inspection.
fn run_composite_4pod(domains: usize) -> ShardedSim {
    let c = quartz_in_core(4, 4, 4, 4);
    let mut sim = ShardedSim::new(
        c.net.clone(),
        SimConfig {
            seed: 7,
            ..SimConfig::default()
        },
        domains,
    );
    let n = c.hosts.len();
    let stop = SimTime::from_ms(1);
    for i in 0..n {
        let src = c.hosts[i];
        let dst = c.hosts[(i + n / 2) % n];
        if i % 2 == 0 {
            sim.add_flow(
                src,
                dst,
                400,
                FlowKind::Rpc { count: 200 },
                0,
                SimTime::ZERO,
            );
        } else {
            sim.add_flow(
                src,
                dst,
                400,
                FlowKind::Poisson {
                    mean_gap_ns: 2_000.0,
                    stop,
                    respond: false,
                },
                1,
                SimTime::ZERO,
            );
        }
    }
    sim.run(SimTime::from_ms(2), &ThreadPool::sequential());
    sim
}

/// Digest of everything the 4-pod run produces that the 1-vs-4-domain
/// equivalence is asserted over.
fn composite_digest(sim: &ShardedSim) -> (u64, u64, u64, u64, usize, u64) {
    let s = sim.stats();
    let rpc = s.summary(0);
    (
        s.generated,
        s.delivered,
        s.dropped,
        sim.events_processed(),
        rpc.count,
        rpc.mean_ns.to_bits(),
    )
}

/// The sharded engine on the 4-pod composite, 1 domain vs 4: equal
/// event counts and bit-identical stats are asserted (the determinism
/// contract), then both are timed. On a multicore host the 4-domain
/// run is the one that parallelizes; the per-domain busy breakdown
/// (injected monotonic clock) shows where the time went either way.
fn bench_composite_4dom() {
    let base = {
        let sim = run_composite_4pod(1);
        composite_digest(&sim)
    };
    let shard = {
        let sim = run_composite_4pod(4);
        composite_digest(&sim)
    };
    assert_eq!(base, shard, "sharded composite diverged from 1 domain");
    println!(
        "composite_4dom: {} packets, {} events per iteration (identical at 1 and 4 domains)",
        base.1, base.3
    );
    let events = base.3;

    let rec1 = measure("composite_4dom", "domains_1", || {
        run_composite_4pod(black_box(1))
    });
    note_event_rate("composite_4dom_domains_1", events, &rec1);
    let rec4 = measure("composite_4dom", "domains_4", || {
        run_composite_4pod(black_box(4))
    });
    note_event_rate("composite_4dom_domains_4", events, &rec4);

    // Busy/idle breakdown of one instrumented 4-domain run: wall time
    // enters the engine only through this injected clock.
    let mut sim = run_instrumented_4pod();
    sim.run(SimTime::from_ms(2), &ThreadPool::sequential());
    let busy = sim.domain_busy_ns();
    let per_dom = sim.per_domain_events();
    for (i, (&b, &e)) in busy.iter().zip(&per_dom).enumerate() {
        let ns = b as f64;
        note("shard_profile", &format!("dom{i}_busy"), ns, ns, e);
        let rate = if b > 0 { e as f64 * 1e3 / ns } else { 0.0 };
        println!("shard_profile/dom{i:<28} busy {ns:>12.0} ns  ({e} events, {rate:.2} M events/s)");
    }
    let coord = sim.coordinator_ns() as f64;
    note("shard_profile", "coordinator", coord, coord, 1);
    println!("shard_profile/coordinator{:>21} {coord:>12.0} ns", "");
}

/// Same 4-pod scenario with the monotonic clock injected.
fn run_instrumented_4pod() -> ShardedSim {
    let c = quartz_in_core(4, 4, 4, 4);
    let mut sim = ShardedSim::new(
        c.net.clone(),
        SimConfig {
            seed: 7,
            ..SimConfig::default()
        },
        4,
    );
    sim.set_clock(monotonic_ns);
    let n = c.hosts.len();
    for i in 0..n {
        let src = c.hosts[i];
        let dst = c.hosts[(i + n / 2) % n];
        sim.add_flow(
            src,
            dst,
            400,
            FlowKind::Rpc { count: 200 },
            0,
            SimTime::ZERO,
        );
    }
    sim
}

/// The scale target: a 10 240-host Quartz-in-core composite (16 pods ×
/// 16 ToRs × 40 hosts, 16-switch core ring) built, partitioned into 16
/// domains, and driven with 512 pod-crossing RPC flows. One timed pass
/// (construction and run recorded separately) — skipped under
/// `QUARTZ_BENCH_FAST` so CI smoke stays quick.
fn bench_composite_10k_hosts() {
    if std::env::var_os("QUARTZ_BENCH_FAST").is_some() {
        println!("composite_10k_hosts: skipped (QUARTZ_BENCH_FAST)");
        return;
    }
    let (mut sim, build_ns) = wall_timed(|| {
        let c = quartz_in_core(16, 16, 40, 16);
        let mut sim = ShardedSim::new(
            c.net.clone(),
            SimConfig {
                seed: 11,
                ..SimConfig::default()
            },
            16,
        );
        let n = c.hosts.len();
        assert!(n >= 10_000, "scale target is >= 10^4 hosts, got {n}");
        for i in 0..512 {
            let src = c.hosts[(i * 20) % n];
            let dst = c.hosts[(i * 20 + n / 2) % n];
            sim.add_flow(src, dst, 400, FlowKind::Rpc { count: 50 }, 0, SimTime::ZERO);
        }
        sim
    });
    let (_, run_ns) = wall_timed(|| {
        sim.run(SimTime::from_ms(2), &ThreadPool::sequential());
    });
    let events = sim.events_processed();
    let s = sim.stats();
    assert_eq!(s.summary(0).count, 512 * 50, "every RPC must complete");
    note("composite_10k_hosts", "construct", build_ns, build_ns, 1);
    note("composite_10k_hosts", "run_2ms", run_ns, run_ns, events);
    println!(
        "composite_10k_hosts: {} domains, {} events, construct {:.2} s, run {:.2} s ({:.2} M events/s)",
        sim.domain_count(),
        events,
        build_ns / 1e9,
        run_ns / 1e9,
        events as f64 * 1e3 / run_ns,
    );
}
