//! Performance of the §3.1 wavelength planners. The paper claims the
//! greedy heuristic "only requires seconds to compute on a standard
//! workstation even for a ring size of 35" — ours is far below that.

use quartz_bench::timing::measure;
use quartz_core::channel::greedy::{assign_with_order, Ordering};
use quartz_core::channel::{exact, greedy};
use quartz_core::fault::FailureModel;
use std::hint::black_box;

fn main() {
    for m in [9usize, 17, 33, 35] {
        measure("greedy_assignment", &format!("best_of_starts_m{m}"), || {
            greedy::assign_best(black_box(m))
        });
    }

    // Odd sizes prove optimality essentially instantly; m=8 needs a real
    // infeasibility proof at the load bound.
    for m in [8usize, 9, 11, 13] {
        measure("exact_assignment", &format!("solve_m{m}"), || {
            exact::solve(black_box(m), 100_000_000)
        });
    }

    for (name, ord) in [
        ("longest_first_paper", Ordering::LongestFirst),
        ("shortest_first", Ordering::ShortestFirst),
    ] {
        measure("greedy_ordering_ablation", &format!("{name}_m33"), || {
            assign_with_order(black_box(33), 0, ord)
        });
    }

    let model = FailureModel::new(33, 2);
    measure("fault", "monte_carlo_1k_trials", || {
        model.monte_carlo(4, 1_000, 7)
    });

    quartz_bench::timing::write_json("channel_assignment", None);
}
