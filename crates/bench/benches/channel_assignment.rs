//! Performance of the §3.1 wavelength planners. The paper claims the
//! greedy heuristic "only requires seconds to compute on a standard
//! workstation even for a ring size of 35" — ours is far below that.

use criterion::{criterion_group, criterion_main, Criterion};
use quartz_core::channel::{exact, greedy};
use std::hint::black_box;

fn bench_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_assignment");
    for m in [9usize, 17, 33, 35] {
        g.bench_function(format!("best_of_starts_m{m}"), |b| {
            b.iter(|| black_box(greedy::assign_best(black_box(m))))
        });
    }
    g.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_assignment");
    // Odd sizes prove optimality essentially instantly; m=8 needs a real
    // infeasibility proof at the load bound.
    for m in [8usize, 9, 11, 13] {
        g.bench_function(format!("solve_m{m}"), |b| {
            b.iter(|| black_box(exact::solve(black_box(m), 100_000_000)))
        });
    }
    g.finish();
}

fn bench_ordering_ablation(c: &mut Criterion) {
    use quartz_core::channel::greedy::{assign_with_order, Ordering};
    let mut g = c.benchmark_group("greedy_ordering_ablation");
    for (name, ord) in [
        ("longest_first_paper", Ordering::LongestFirst),
        ("shortest_first", Ordering::ShortestFirst),
    ] {
        g.bench_function(format!("{name}_m33"), |b| {
            b.iter(|| black_box(assign_with_order(black_box(33), 0, ord)))
        });
    }
    g.finish();
}

fn bench_fault_mc(c: &mut Criterion) {
    use quartz_core::fault::FailureModel;
    let model = FailureModel::new(33, 2);
    c.bench_function("fault_monte_carlo_1k_trials", |b| {
        b.iter(|| black_box(model.monte_carlo(4, 1_000, 7)))
    });
}

criterion_group!(
    benches,
    bench_greedy,
    bench_exact,
    bench_ordering_ablation,
    bench_fault_mc
);
criterion_main!(benches);
