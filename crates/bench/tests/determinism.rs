//! The pool determinism contract, pinned end-to-end: every experiment
//! must produce bit-identical results at any worker count, because each
//! unit derives its RNG from its unit index (never from which worker ran
//! it) and results fold in unit order on the calling thread.

use quartz_bench::experiments::{fig06, fig10, fig17};
use quartz_bench::Scale;
use quartz_core::ThreadPool;

#[test]
fn fig10_rows_are_identical_at_one_and_four_workers() {
    let seq = fig10::run_with(Scale::Quick, &ThreadPool::new(1));
    let par = fig10::run_with(Scale::Quick, &ThreadPool::new(4));
    assert_eq!(seq, par, "fig10 quick rows must not depend on --jobs");
}

#[test]
fn fig06_grid_is_identical_at_one_and_four_workers() {
    let seq = fig06::run_with(Scale::Quick, &ThreadPool::new(1));
    let par = fig06::run_with(Scale::Quick, &ThreadPool::new(4));
    assert_eq!(seq, par, "fig6 grid must not depend on --jobs");
}

#[test]
fn fig06_dynamic_ring_cut_is_identical_across_worker_counts() {
    let seq = fig06::run_dynamic_with(Scale::Quick, &ThreadPool::new(1));
    for workers in [2, 4, 8] {
        let par = fig06::run_dynamic_with(Scale::Quick, &ThreadPool::new(workers));
        assert_eq!(
            seq, par,
            "fig6 dynamic ring-cut scenario must not depend on --jobs (workers={workers})"
        );
    }
}

#[test]
fn fig17_panels_are_identical_at_one_and_four_workers() {
    let seq = fig17::run_with(Scale::Quick, &ThreadPool::new(1));
    let par = fig17::run_with(Scale::Quick, &ThreadPool::new(4));
    assert_eq!(seq, par, "fig17 quick panels must not depend on --jobs");
}

/// The observability contract extends the pool contract: the full fig06
/// trace body (static grid metrics + dynamic ring-cut events + merged
/// metrics) must be byte-identical at any worker count, because events
/// come from the serial simulator and metrics merge in unit-index order.
#[test]
fn fig06_trace_body_is_identical_at_one_and_four_workers() {
    let seq = fig06::trace_ndjson_with(Scale::Quick, &ThreadPool::new(1));
    let par = fig06::trace_ndjson_with(Scale::Quick, &ThreadPool::new(4));
    assert_eq!(seq, par, "fig06 trace ndjson must not depend on --jobs");
    assert!(!seq.is_empty() && seq.ends_with('\n'));
}

/// The `--trace-out` files themselves — written through
/// [`quartz_bench::trace::write`] exactly as the experiment binaries do
/// — must be byte-identical on disk at `--jobs 1` vs `--jobs 4`.
#[test]
fn fig06_trace_files_are_byte_identical_across_worker_counts() {
    let dir = std::env::temp_dir();
    let p1 = dir.join("quartz-determinism-fig06-j1.ndjson");
    let p4 = dir.join("quartz-determinism-fig06-j4.ndjson");
    quartz_bench::trace::write(
        &p1,
        &fig06::trace_ndjson_with(Scale::Quick, &ThreadPool::new(1)),
    );
    quartz_bench::trace::write(
        &p4,
        &fig06::trace_ndjson_with(Scale::Quick, &ThreadPool::new(4)),
    );
    let b1 = std::fs::read(&p1).unwrap();
    let b4 = std::fs::read(&p4).unwrap();
    assert!(!b1.is_empty());
    assert_eq!(
        b1, b4,
        "fig06 --trace-out files must be bit-identical across --jobs"
    );
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p4);
}

/// A streaming [`quartz_obs::NdjsonRecorder`] writing straight to disk
/// must reproduce the in-memory event serialization byte for byte, run
/// after run.
#[test]
fn ndjson_recorder_streams_the_exact_event_bytes() {
    use quartz_netsim::faults::{
        ring_cut_scenario_observed, ring_cut_scenario_traced, CutScenarioConfig,
    };
    use quartz_obs::NdjsonRecorder;

    let cfg = CutScenarioConfig::quick(0xD16);
    let path = std::env::temp_dir().join("quartz-determinism-recorder.ndjson");
    let rec = NdjsonRecorder::create(&path).unwrap();
    let (report, rec, _metrics) = ring_cut_scenario_observed(&cfg, Box::new(rec));
    drop(rec); // flush
    let streamed = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    let (report2, events, _metrics2) = ring_cut_scenario_traced(&cfg);
    assert_eq!(report.delivered, report2.delivered);
    assert_eq!(
        streamed,
        quartz_obs::event::to_ndjson(&events),
        "streamed ndjson must equal the in-memory serialization"
    );
    assert!(
        streamed.lines().count() > 100,
        "quick scenario should emit many events"
    );
}
