//! The pool determinism contract, pinned end-to-end: every experiment
//! must produce bit-identical results at any worker count, because each
//! unit derives its RNG from its unit index (never from which worker ran
//! it) and results fold in unit order on the calling thread.

use quartz_bench::experiments::{fig06, fig10, fig17};
use quartz_bench::Scale;
use quartz_core::ThreadPool;

#[test]
fn fig10_rows_are_identical_at_one_and_four_workers() {
    let seq = fig10::run_with(Scale::Quick, &ThreadPool::new(1));
    let par = fig10::run_with(Scale::Quick, &ThreadPool::new(4));
    assert_eq!(seq, par, "fig10 quick rows must not depend on --jobs");
}

#[test]
fn fig06_grid_is_identical_at_one_and_four_workers() {
    let seq = fig06::run_with(Scale::Quick, &ThreadPool::new(1));
    let par = fig06::run_with(Scale::Quick, &ThreadPool::new(4));
    assert_eq!(seq, par, "fig6 grid must not depend on --jobs");
}

#[test]
fn fig06_dynamic_ring_cut_is_identical_across_worker_counts() {
    let seq = fig06::run_dynamic_with(Scale::Quick, &ThreadPool::new(1));
    for workers in [2, 4, 8] {
        let par = fig06::run_dynamic_with(Scale::Quick, &ThreadPool::new(workers));
        assert_eq!(
            seq, par,
            "fig6 dynamic ring-cut scenario must not depend on --jobs (workers={workers})"
        );
    }
}

#[test]
fn fig17_panels_are_identical_at_one_and_four_workers() {
    let seq = fig17::run_with(Scale::Quick, &ThreadPool::new(1));
    let par = fig17::run_with(Scale::Quick, &ThreadPool::new(4));
    assert_eq!(seq, par, "fig17 quick panels must not depend on --jobs");
}
