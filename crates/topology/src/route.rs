//! Routing tables: all-shortest-paths ECMP and spanning-tree (L2)
//! forwarding.
//!
//! The paper routes Quartz with ECMP ("since there is a single shortest
//! path between any pair of switches in a full mesh, ECMP always selects
//! the direct one-hop path", §3.4) and uses per-VLAN spanning trees on the
//! prototype (via SPAIN, §6). Valiant load balancing is expressed on top
//! of this table by routing to a chosen intermediate switch first.
//!
//! [`RouteTable`] stores, for every destination node, the set of
//! shortest-path next hops at every node — the ECMP DAG. Selection among
//! equal-cost hops is by flow hash, so a flow's packets stay on one path
//! (no reordering), which is how real ECMP behaves.

use crate::graph::{LinkId, Network, NodeId};
use std::collections::VecDeque;

/// All-pairs next-hop table.
///
/// # Examples
///
/// ```
/// use quartz_topology::builders::prototype_quartz;
/// use quartz_topology::route::RouteTable;
///
/// // §3.4: in a full mesh, ECMP always picks the single direct hop.
/// let p = prototype_quartz();
/// let table = RouteTable::all_shortest_paths(&p.net);
/// assert_eq!(table.next_hops(p.switches[0], p.switches[3]), &[p.switches[3]]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteTable {
    n: usize,
    /// `dist[dst][node]` in links; `u32::MAX` = unreachable.
    dist: Vec<Vec<u32>>,
    /// `next[dst][node]` = shortest-path next hops from `node` toward
    /// `dst`.
    next: Vec<Vec<Vec<NodeId>>>,
}

impl RouteTable {
    /// Builds the full ECMP table with one reverse BFS per destination.
    pub fn all_shortest_paths(net: &Network) -> Self {
        Self::degraded(net, |_| false, |_| false)
    }

    /// Builds the ECMP table over the network *minus* failed elements —
    /// the table a converged control plane installs after the failures
    /// in §3.5's model. `dead_link` / `dead_node` mark the casualties; a
    /// dead node implicitly kills every link incident to it, and no
    /// route ever enters or leaves a dead node.
    pub fn degraded(
        net: &Network,
        dead_link: impl Fn(LinkId) -> bool,
        dead_node: impl Fn(NodeId) -> bool,
    ) -> Self {
        let n = net.node_count();
        debug_assert!(n <= u32::MAX as usize, "node ids fit u32");
        let mut dist = Vec::with_capacity(n);
        let mut next = Vec::with_capacity(n);
        for d in 0..n {
            let dst = NodeId(d as u32);
            if dead_node(dst) {
                // Nothing routes toward a dead destination.
                dist.push(vec![u32::MAX; n]);
                next.push(vec![Vec::new(); n]);
                continue;
            }
            let (dv, nv) = bfs_to(net, dst, &dead_link, &dead_node);
            dist.push(dv);
            next.push(nv);
        }
        RouteTable { n, dist, next }
    }

    /// Builds a single-path table routed along the BFS spanning tree
    /// rooted at `root` — the behaviour of classic L2 Ethernet, where
    /// "Ethernet creates a single spanning tree … it can only utilize a
    /// small fraction of the links in the network" (§3.4).
    pub fn spanning_tree(net: &Network, root: NodeId) -> Self {
        let n = net.node_count();
        // Parent pointers of the BFS tree.
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[root.0 as usize] = true;
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            for &(v, _) in net.neighbors(u) {
                if !seen[v.0 as usize] {
                    seen[v.0 as usize] = true;
                    parent[v.0 as usize] = Some(u);
                    q.push_back(v);
                }
            }
        }
        // Tree adjacency.
        let mut tree = Network::new();
        for node in net.nodes() {
            match node.kind {
                crate::graph::NodeKind::Host => tree.add_host(node.rack),
                crate::graph::NodeKind::Switch(r) => tree.add_switch(r, node.rack),
            };
        }
        debug_assert!(parent.len() <= u32::MAX as usize, "node ids fit u32");
        for (v, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                tree.connect(NodeId(v as u32), *p, 1.0);
            }
        }
        Self::all_shortest_paths(&tree)
    }

    /// Shortest-path length in links, if reachable.
    pub fn path_len(&self, from: NodeId, to: NodeId) -> Option<usize> {
        let d = self.dist[to.0 as usize][from.0 as usize];
        (d != u32::MAX).then_some(d as usize)
    }

    /// The ECMP next-hop set at `at` toward `dst` (empty at `dst` itself
    /// or if unreachable).
    pub fn next_hops(&self, at: NodeId, dst: NodeId) -> &[NodeId] {
        &self.next[dst.0 as usize][at.0 as usize]
    }

    /// Deterministic ECMP selection: pick among the equal-cost next hops
    /// by `flow_hash`, so all packets of a flow take the same path.
    pub fn ecmp_next(&self, at: NodeId, dst: NodeId, flow_hash: u64) -> Option<NodeId> {
        let hops = self.next_hops(at, dst);
        if hops.is_empty() {
            None
        } else {
            Some(hops[(flow_hash % hops.len() as u64) as usize])
        }
    }

    /// One shortest path from `from` to `to` (following ECMP choice 0),
    /// inclusive of both endpoints.
    pub fn a_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        self.path_len(from, to)?;
        let mut path = vec![from];
        let mut cur = from;
        while cur != to {
            cur = *self.next_hops(cur, to).first()?;
            path.push(cur);
        }
        Some(path)
    }

    /// Number of nodes in the table.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Incrementally updates the table for one topology `change`,
    /// recomputing only the destinations whose shortest-path DAG the
    /// change can touch. `dead_link` / `dead_node` must describe the
    /// full failure state **after** the change (the same predicates a
    /// from-scratch [`RouteTable::degraded`] would get), and the table
    /// must currently match the pre-change state; the result is then
    /// identical to the full rebuild — the invariant the simulator
    /// `debug_assert`s on every reconvergence and
    /// `incremental_patch_matches_scratch_rebuild` pins.
    ///
    /// The affected-destination tests are exact for links and
    /// conservative for nodes:
    ///
    /// * a removed link `(a, b)` only matters for destinations whose
    ///   DAG contains it, i.e. `|dist[a] − dist[b]| == 1` (removing an
    ///   edge on no shortest path changes no distance);
    /// * a restored link only matters where it shortens a distance or
    ///   adds an equal-cost edge: `dist[a] + 1 <= dist[b]` (or the
    ///   mirror), including the `==` case that only widens the ECMP
    ///   set;
    /// * a removed node matters for destinations it could reach (it is
    ///   on no path toward any other destination);
    /// * a restored node matters for destinations any of its live
    ///   neighbors can reach (otherwise it remains isolated).
    pub fn patch(
        &mut self,
        net: &Network,
        change: RouteChange,
        dead_link: impl Fn(LinkId) -> bool,
        dead_node: impl Fn(NodeId) -> bool,
    ) {
        let n = self.n;
        debug_assert!(n <= u32::MAX as usize, "node ids fit u32");
        for d in 0..n {
            let dst = NodeId(d as u32);
            let affected = match change {
                RouteChange::LinkDown(l) => {
                    let link = net.link(l);
                    let da = self.dist[d][link.a.0 as usize];
                    let db = self.dist[d][link.b.0 as usize];
                    da != u32::MAX && db != u32::MAX && (da == db + 1 || db == da + 1)
                }
                RouteChange::LinkUp(l) => {
                    let link = net.link(l);
                    if dead_node(link.a) || dead_node(link.b) {
                        // A leg into a dead switch: the link stays
                        // unusable, nothing to recompute.
                        false
                    } else {
                        let da = self.dist[d][link.a.0 as usize];
                        let db = self.dist[d][link.b.0 as usize];
                        (da != u32::MAX && (db == u32::MAX || da < db))
                            || (db != u32::MAX && (da == u32::MAX || db < da))
                    }
                }
                RouteChange::NodeDown(x) => dst == x || self.dist[d][x.0 as usize] != u32::MAX,
                RouteChange::NodeUp(x) => {
                    dst == x
                        || net.neighbors(x).iter().any(|&(v, l)| {
                            !dead_link(l) && !dead_node(v) && self.dist[d][v.0 as usize] != u32::MAX
                        })
                }
            };
            if !affected {
                continue;
            }
            if dead_node(dst) {
                self.dist[d].iter_mut().for_each(|v| *v = u32::MAX);
                self.next[d].iter_mut().for_each(Vec::clear);
            } else {
                let (dv, nv) = bfs_to(net, dst, &dead_link, &dead_node);
                self.dist[d] = dv;
                self.next[d] = nv;
            }
        }
    }
}

/// One topology delta for [`RouteTable::patch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteChange {
    /// Link `l` failed (both directions).
    LinkDown(LinkId),
    /// Link `l` recovered.
    LinkUp(LinkId),
    /// Node `n` failed (kills every incident link).
    NodeDown(NodeId),
    /// Node `n` recovered.
    NodeUp(NodeId),
}

/// [`RouteTable`] flattened for the per-hop fast path: one contiguous
/// CSR array of `(next hop, directed link slot)` entries indexed by
/// `dst * n + at`, so a forwarding decision is two array reads and a
/// modulo — no nested `Vec` chasing and no adjacency search for the
/// link (`slot = 2 × link + direction` matches the simulator's
/// per-direction link array layout).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatRoutes {
    n: usize,
    /// CSR offsets, `n * n + 1` entries.
    offsets: Vec<u32>,
    /// Concatenated ECMP sets, in [`RouteTable::next_hops`] order.
    hops: Vec<(NodeId, u32)>,
}

impl FlatRoutes {
    /// Flattens `table` over `net`, resolving every next hop to its
    /// directed link slot once, here, instead of per packet.
    ///
    /// # Panics
    /// Panics if the table references a hop with no link in `net`.
    pub fn new(table: &RouteTable, net: &Network) -> Self {
        let n = table.n;
        debug_assert!(n <= u32::MAX as usize, "node ids fit u32");
        let mut offsets = Vec::with_capacity(n * n + 1);
        let mut hops = Vec::new();
        offsets.push(0);
        for dst in 0..n {
            for at in 0..n {
                for &next in &table.next[dst][at] {
                    let at_id = NodeId(at as u32);
                    let l = net
                        .link_between(at_id, next)
                        .expect("route next hop must be adjacent");
                    let dir = u32::from(net.link(l).a != at_id);
                    hops.push((next, 2 * l.0 + dir));
                }
                debug_assert!(hops.len() <= u32::MAX as usize, "hop offsets fit u32");
                offsets.push(hops.len() as u32);
            }
        }
        FlatRoutes { n, offsets, hops }
    }

    /// The ECMP set at `at` toward `dst` as `(next hop, directed link
    /// slot)` entries, in the same order as [`RouteTable::next_hops`].
    #[inline]
    pub fn next_hops(&self, at: NodeId, dst: NodeId) -> &[(NodeId, u32)] {
        let i = dst.0 as usize * self.n + at.0 as usize;
        &self.hops[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Deterministic ECMP pick by flow hash — selects the same hop as
    /// [`RouteTable::ecmp_next`] on the source table, plus its directed
    /// link slot. ECMP sets are almost always 1, 2, or 4 wide, where
    /// the modulo reduces to a mask — worth special-casing because this
    /// runs once per hop of every simulated packet.
    #[inline]
    pub fn ecmp_next(&self, at: NodeId, dst: NodeId, flow_hash: u64) -> Option<(NodeId, u32)> {
        let hops = self.next_hops(at, dst);
        let idx = match hops.len() {
            0 => return None,
            1 => 0,
            2 => (flow_hash & 1) as usize,
            4 => (flow_hash & 3) as usize,
            n => (flow_hash % n as u64) as usize,
        };
        Some(hops[idx])
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.n
    }
}

/// Reverse BFS from `dst` over the surviving graph: distances and
/// next-hop sets toward `dst`.
fn bfs_to(
    net: &Network,
    dst: NodeId,
    dead_link: &impl Fn(LinkId) -> bool,
    dead_node: &impl Fn(NodeId) -> bool,
) -> (Vec<u32>, Vec<Vec<NodeId>>) {
    let n = net.node_count();
    let mut dist = vec![u32::MAX; n];
    let mut q = VecDeque::new();
    dist[dst.0 as usize] = 0;
    q.push_back(dst);
    while let Some(u) = q.pop_front() {
        for &(v, l) in net.neighbors(u) {
            if dead_link(l) || dead_node(v) {
                continue;
            }
            if dist[v.0 as usize] == u32::MAX {
                dist[v.0 as usize] = dist[u.0 as usize] + 1;
                q.push_back(v);
            }
        }
    }
    let mut next = vec![Vec::new(); n];
    debug_assert!(n <= u32::MAX as usize, "node ids fit u32");
    for u in 0..n {
        if dist[u] == u32::MAX || dist[u] == 0 || dead_node(NodeId(u as u32)) {
            continue;
        }
        for &(v, l) in net.neighbors(NodeId(u as u32)) {
            if dead_link(l) || dead_node(v) {
                continue;
            }
            if dist[v.0 as usize] + 1 == dist[u] {
                next[u].push(v);
            }
        }
    }
    (dist, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{prototype_quartz, prototype_two_tier, three_tier};
    use crate::graph::SwitchRole;

    #[test]
    fn mesh_ecmp_always_direct() {
        // §3.4: in a full mesh ECMP always selects the one-hop path.
        let p = prototype_quartz();
        let t = RouteTable::all_shortest_paths(&p.net);
        for &a in &p.switches {
            for &b in &p.switches {
                if a != b {
                    assert_eq!(t.next_hops(a, b), &[b]);
                }
            }
        }
    }

    #[test]
    fn tree_paths_go_through_root() {
        let p = prototype_two_tier();
        let t = RouteTable::all_shortest_paths(&p.net);
        let path = t.a_path(p.hosts[0], p.hosts[2]).unwrap();
        assert_eq!(path.len(), 5); // h, tor, root, tor, h
        assert_eq!(path[2], p.switches[0]);
    }

    #[test]
    fn ecmp_spreads_across_equal_paths_deterministically() {
        let t3 = three_tier(2, 2, 1, 2, 10.0, 40.0);
        let table = RouteTable::all_shortest_paths(&t3.net);
        // From a ToR toward a core-adjacent destination there are two agg
        // choices; different hashes may differ, same hash never does.
        let tor = t3.tors[0];
        let far_host = *t3.hosts.last().unwrap();
        let h1 = table.ecmp_next(tor, far_host, 1).unwrap();
        let h1b = table.ecmp_next(tor, far_host, 1).unwrap();
        assert_eq!(h1, h1b);
        let hops = table.next_hops(tor, far_host);
        assert!(!hops.is_empty() && hops.len() <= 2);
    }

    #[test]
    fn path_len_matches_a_path() {
        let t3 = three_tier(3, 2, 2, 2, 10.0, 40.0);
        let table = RouteTable::all_shortest_paths(&t3.net);
        for &a in t3.hosts.iter().take(4) {
            for &b in t3.hosts.iter().rev().take(4) {
                if a == b {
                    continue;
                }
                let p = table.a_path(a, b).unwrap();
                assert_eq!(p.len() - 1, table.path_len(a, b).unwrap());
            }
        }
    }

    #[test]
    fn degraded_table_detours_around_a_cut_link() {
        // Cut the direct S0↔S3 channel of the prototype mesh: ECMP must
        // fall back to the two-hop detours through S1/S2 (§3.5).
        let p = prototype_quartz();
        let cut = p.net.link_between(p.switches[0], p.switches[3]).unwrap();
        let t = RouteTable::degraded(&p.net, |l| l == cut, |_| false);
        assert_eq!(t.path_len(p.switches[0], p.switches[3]), Some(2));
        let hops = t.next_hops(p.switches[0], p.switches[3]);
        assert_eq!(hops.len(), 2, "{hops:?}");
        assert!(!hops.contains(&p.switches[3]));
        // Untouched pairs keep their direct hop.
        assert_eq!(t.next_hops(p.switches[0], p.switches[1]), &[p.switches[1]]);
    }

    #[test]
    fn degraded_table_excludes_a_dead_switch() {
        let p = prototype_quartz();
        let dead = p.switches[2];
        let t = RouteTable::degraded(&p.net, |_| false, |n| n == dead);
        // No route enters, leaves, or targets the dead switch.
        for &s in &p.switches {
            if s != dead {
                assert_eq!(t.path_len(s, dead), None);
                assert!(!t.next_hops(s, p.hosts[0]).contains(&dead));
            }
        }
        // Its hosts are cut off; everyone else still talks.
        let orphan = p.hosts[4]; // hosts 4,5 hang off switch 2
        assert_eq!(t.path_len(p.hosts[0], orphan), None);
        assert_eq!(t.path_len(p.hosts[0], p.hosts[7]), Some(3));
    }

    #[test]
    fn unreachable_is_none() {
        let mut net = Network::new();
        let a = net.add_host(None);
        let b = net.add_host(None);
        let t = RouteTable::all_shortest_paths(&net);
        assert_eq!(t.path_len(a, b), None);
        assert_eq!(t.ecmp_next(a, b, 0), None);
    }

    #[test]
    fn spanning_tree_uses_single_paths() {
        let p = prototype_quartz();
        // Root the tree at S1: S2↔S3 traffic must detour via S1 even
        // though a direct mesh link exists.
        let t = RouteTable::spanning_tree(&p.net, p.switches[0]);
        let path = t.a_path(p.switches[1], p.switches[2]).unwrap();
        assert!(path.contains(&p.switches[0]), "path {path:?} skips root");
        // Every pair still reachable.
        for &a in &p.hosts {
            for &b in &p.hosts {
                if a != b {
                    assert!(t.path_len(a, b).is_some());
                }
            }
        }
    }

    #[test]
    fn spanning_tree_stretches_mesh_paths() {
        // On the Quartz mesh, STP forfeits the direct links: §3.4's
        // argument for ECMP over plain Ethernet.
        let p = prototype_quartz();
        let ecmp = RouteTable::all_shortest_paths(&p.net);
        let stp = RouteTable::spanning_tree(&p.net, p.switches[0]);
        let mut longer = 0;
        for &a in &p.hosts {
            for &b in &p.hosts {
                if a == b {
                    continue;
                }
                let e = ecmp.path_len(a, b).unwrap();
                let s = stp.path_len(a, b).unwrap();
                assert!(s >= e);
                if s > e {
                    longer += 1;
                }
            }
        }
        assert!(longer > 0, "expected some stretched STP paths");
    }

    #[test]
    fn flat_routes_agree_with_the_table() {
        let t3 = three_tier(3, 2, 2, 2, 10.0, 40.0);
        let table = RouteTable::all_shortest_paths(&t3.net);
        let flat = FlatRoutes::new(&table, &t3.net);
        assert_eq!(flat.node_count(), table.node_count());
        let n = t3.net.node_count() as u32;
        for a in 0..n {
            for b in 0..n {
                let (at, dst) = (NodeId(a), NodeId(b));
                let nested = table.next_hops(at, dst);
                let csr = flat.next_hops(at, dst);
                assert_eq!(nested.len(), csr.len());
                for (i, &(hop, slot)) in csr.iter().enumerate() {
                    assert_eq!(hop, nested[i]);
                    let l = t3.net.link_between(at, hop).unwrap();
                    let dir = u32::from(t3.net.link(l).a != at);
                    assert_eq!(slot, 2 * l.0 + dir);
                }
                for hash in [0u64, 1, 7, u64::MAX] {
                    assert_eq!(
                        flat.ecmp_next(at, dst, hash).map(|(h, _)| h),
                        table.ecmp_next(at, dst, hash)
                    );
                }
            }
        }
    }

    /// Drives `patch` through a fault/recovery script and cross-checks
    /// every step against a from-scratch `degraded` build.
    #[test]
    fn patch_matches_scratch_rebuild_through_a_fault_script() {
        let p = prototype_quartz();
        let l01 = p.net.link_between(p.switches[0], p.switches[1]).unwrap();
        let l23 = p.net.link_between(p.switches[2], p.switches[3]).unwrap();
        let script = [
            RouteChange::LinkDown(l01),
            RouteChange::NodeDown(p.switches[2]),
            RouteChange::LinkDown(l23), // already implicitly dead leg
            RouteChange::LinkUp(l01),
            RouteChange::NodeUp(p.switches[2]),
            RouteChange::LinkUp(l23),
        ];
        let mut dead_links = vec![false; p.net.link_count()];
        let mut dead_nodes = vec![false; p.net.node_count()];
        let mut table = RouteTable::all_shortest_paths(&p.net);
        for change in script {
            match change {
                RouteChange::LinkDown(l) => dead_links[l.0 as usize] = true,
                RouteChange::LinkUp(l) => dead_links[l.0 as usize] = false,
                RouteChange::NodeDown(x) => dead_nodes[x.0 as usize] = true,
                RouteChange::NodeUp(x) => dead_nodes[x.0 as usize] = false,
            }
            let (dl, dn) = (&dead_links, &dead_nodes);
            table.patch(&p.net, change, |l| dl[l.0 as usize], |x| dn[x.0 as usize]);
            let scratch = RouteTable::degraded(&p.net, |l| dl[l.0 as usize], |x| dn[x.0 as usize]);
            assert_eq!(table, scratch, "diverged after {change:?}");
        }
        // Everything recovered: back to the pristine table.
        assert_eq!(table, RouteTable::all_shortest_paths(&p.net));
    }

    #[test]
    fn patch_handles_equal_cost_set_changes_on_recovery() {
        // Three-tier has real ECMP fan-out; flapping an agg→core link
        // must restore the exact equal-cost sets, not just distances.
        let t3 = three_tier(2, 2, 2, 2, 10.0, 40.0);
        let mut table = RouteTable::all_shortest_paths(&t3.net);
        let agg_core = t3
            .net
            .links()
            .find(|l| t3.cores.contains(&l.a) || t3.cores.contains(&l.b))
            .map(|l| l.id)
            .unwrap();
        for change in [
            RouteChange::LinkDown(agg_core),
            RouteChange::LinkUp(agg_core),
        ] {
            let dead = matches!(change, RouteChange::LinkDown(_));
            table.patch(&t3.net, change, |l| dead && l == agg_core, |_| false);
            let scratch = RouteTable::degraded(&t3.net, |l| dead && l == agg_core, |_| false);
            assert_eq!(table, scratch, "diverged after {change:?}");
        }
    }

    #[test]
    fn spanning_tree_on_three_tier_never_shortens() {
        let t3 = three_tier(2, 2, 1, 2, 10.0, 40.0);
        let ecmp = RouteTable::all_shortest_paths(&t3.net);
        let stp = RouteTable::spanning_tree(&t3.net, t3.cores[0]);
        for &a in &t3.hosts {
            for &b in &t3.hosts {
                if a != b {
                    assert!(stp.path_len(a, b).unwrap() >= ecmp.path_len(a, b).unwrap());
                }
            }
        }
        let _ = SwitchRole::Core;
    }
}
