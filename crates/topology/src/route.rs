//! Routing tables: all-shortest-paths ECMP and spanning-tree (L2)
//! forwarding.
//!
//! The paper routes Quartz with ECMP ("since there is a single shortest
//! path between any pair of switches in a full mesh, ECMP always selects
//! the direct one-hop path", §3.4) and uses per-VLAN spanning trees on the
//! prototype (via SPAIN, §6). Valiant load balancing is expressed on top
//! of this table by routing to a chosen intermediate switch first.
//!
//! [`RouteTable`] stores, for every destination node, the set of
//! shortest-path next hops at every node — the ECMP DAG. Selection among
//! equal-cost hops is by flow hash, so a flow's packets stay on one path
//! (no reordering), which is how real ECMP behaves.

use crate::graph::{LinkId, Network, NodeId};
use std::collections::VecDeque;

/// All-pairs next-hop table.
///
/// # Examples
///
/// ```
/// use quartz_topology::builders::prototype_quartz;
/// use quartz_topology::route::RouteTable;
///
/// // §3.4: in a full mesh, ECMP always picks the single direct hop.
/// let p = prototype_quartz();
/// let table = RouteTable::all_shortest_paths(&p.net);
/// assert_eq!(table.next_hops(p.switches[0], p.switches[3]), &[p.switches[3]]);
/// ```
#[derive(Clone, Debug)]
pub struct RouteTable {
    n: usize,
    /// `dist[dst][node]` in links; `u32::MAX` = unreachable.
    dist: Vec<Vec<u32>>,
    /// `next[dst][node]` = shortest-path next hops from `node` toward
    /// `dst`.
    next: Vec<Vec<Vec<NodeId>>>,
}

impl RouteTable {
    /// Builds the full ECMP table with one reverse BFS per destination.
    pub fn all_shortest_paths(net: &Network) -> Self {
        Self::degraded(net, |_| false, |_| false)
    }

    /// Builds the ECMP table over the network *minus* failed elements —
    /// the table a converged control plane installs after the failures
    /// in §3.5's model. `dead_link` / `dead_node` mark the casualties; a
    /// dead node implicitly kills every link incident to it, and no
    /// route ever enters or leaves a dead node.
    pub fn degraded(
        net: &Network,
        dead_link: impl Fn(LinkId) -> bool,
        dead_node: impl Fn(NodeId) -> bool,
    ) -> Self {
        let n = net.node_count();
        let mut dist = Vec::with_capacity(n);
        let mut next = Vec::with_capacity(n);
        for d in 0..n {
            let dst = NodeId(d as u32);
            if dead_node(dst) {
                // Nothing routes toward a dead destination.
                dist.push(vec![u32::MAX; n]);
                next.push(vec![Vec::new(); n]);
                continue;
            }
            let (dv, nv) = bfs_to(net, dst, &dead_link, &dead_node);
            dist.push(dv);
            next.push(nv);
        }
        RouteTable { n, dist, next }
    }

    /// Builds a single-path table routed along the BFS spanning tree
    /// rooted at `root` — the behaviour of classic L2 Ethernet, where
    /// "Ethernet creates a single spanning tree … it can only utilize a
    /// small fraction of the links in the network" (§3.4).
    pub fn spanning_tree(net: &Network, root: NodeId) -> Self {
        let n = net.node_count();
        // Parent pointers of the BFS tree.
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[root.0 as usize] = true;
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            for &(v, _) in net.neighbors(u) {
                if !seen[v.0 as usize] {
                    seen[v.0 as usize] = true;
                    parent[v.0 as usize] = Some(u);
                    q.push_back(v);
                }
            }
        }
        // Tree adjacency.
        let mut tree = Network::new();
        for node in net.nodes() {
            match node.kind {
                crate::graph::NodeKind::Host => tree.add_host(node.rack),
                crate::graph::NodeKind::Switch(r) => tree.add_switch(r, node.rack),
            };
        }
        for (v, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                tree.connect(NodeId(v as u32), *p, 1.0);
            }
        }
        Self::all_shortest_paths(&tree)
    }

    /// Shortest-path length in links, if reachable.
    pub fn path_len(&self, from: NodeId, to: NodeId) -> Option<usize> {
        let d = self.dist[to.0 as usize][from.0 as usize];
        (d != u32::MAX).then_some(d as usize)
    }

    /// The ECMP next-hop set at `at` toward `dst` (empty at `dst` itself
    /// or if unreachable).
    pub fn next_hops(&self, at: NodeId, dst: NodeId) -> &[NodeId] {
        &self.next[dst.0 as usize][at.0 as usize]
    }

    /// Deterministic ECMP selection: pick among the equal-cost next hops
    /// by `flow_hash`, so all packets of a flow take the same path.
    pub fn ecmp_next(&self, at: NodeId, dst: NodeId, flow_hash: u64) -> Option<NodeId> {
        let hops = self.next_hops(at, dst);
        if hops.is_empty() {
            None
        } else {
            Some(hops[(flow_hash % hops.len() as u64) as usize])
        }
    }

    /// One shortest path from `from` to `to` (following ECMP choice 0),
    /// inclusive of both endpoints.
    pub fn a_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        self.path_len(from, to)?;
        let mut path = vec![from];
        let mut cur = from;
        while cur != to {
            cur = *self.next_hops(cur, to).first()?;
            path.push(cur);
        }
        Some(path)
    }

    /// Number of nodes in the table.
    pub fn node_count(&self) -> usize {
        self.n
    }
}

/// Reverse BFS from `dst` over the surviving graph: distances and
/// next-hop sets toward `dst`.
fn bfs_to(
    net: &Network,
    dst: NodeId,
    dead_link: &impl Fn(LinkId) -> bool,
    dead_node: &impl Fn(NodeId) -> bool,
) -> (Vec<u32>, Vec<Vec<NodeId>>) {
    let n = net.node_count();
    let mut dist = vec![u32::MAX; n];
    let mut q = VecDeque::new();
    dist[dst.0 as usize] = 0;
    q.push_back(dst);
    while let Some(u) = q.pop_front() {
        for &(v, l) in net.neighbors(u) {
            if dead_link(l) || dead_node(v) {
                continue;
            }
            if dist[v.0 as usize] == u32::MAX {
                dist[v.0 as usize] = dist[u.0 as usize] + 1;
                q.push_back(v);
            }
        }
    }
    let mut next = vec![Vec::new(); n];
    for u in 0..n {
        if dist[u] == u32::MAX || dist[u] == 0 || dead_node(NodeId(u as u32)) {
            continue;
        }
        for &(v, l) in net.neighbors(NodeId(u as u32)) {
            if dead_link(l) || dead_node(v) {
                continue;
            }
            if dist[v.0 as usize] + 1 == dist[u] {
                next[u].push(v);
            }
        }
    }
    (dist, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{prototype_quartz, prototype_two_tier, three_tier};
    use crate::graph::SwitchRole;

    #[test]
    fn mesh_ecmp_always_direct() {
        // §3.4: in a full mesh ECMP always selects the one-hop path.
        let p = prototype_quartz();
        let t = RouteTable::all_shortest_paths(&p.net);
        for &a in &p.switches {
            for &b in &p.switches {
                if a != b {
                    assert_eq!(t.next_hops(a, b), &[b]);
                }
            }
        }
    }

    #[test]
    fn tree_paths_go_through_root() {
        let p = prototype_two_tier();
        let t = RouteTable::all_shortest_paths(&p.net);
        let path = t.a_path(p.hosts[0], p.hosts[2]).unwrap();
        assert_eq!(path.len(), 5); // h, tor, root, tor, h
        assert_eq!(path[2], p.switches[0]);
    }

    #[test]
    fn ecmp_spreads_across_equal_paths_deterministically() {
        let t3 = three_tier(2, 2, 1, 2, 10.0, 40.0);
        let table = RouteTable::all_shortest_paths(&t3.net);
        // From a ToR toward a core-adjacent destination there are two agg
        // choices; different hashes may differ, same hash never does.
        let tor = t3.tors[0];
        let far_host = *t3.hosts.last().unwrap();
        let h1 = table.ecmp_next(tor, far_host, 1).unwrap();
        let h1b = table.ecmp_next(tor, far_host, 1).unwrap();
        assert_eq!(h1, h1b);
        let hops = table.next_hops(tor, far_host);
        assert!(!hops.is_empty() && hops.len() <= 2);
    }

    #[test]
    fn path_len_matches_a_path() {
        let t3 = three_tier(3, 2, 2, 2, 10.0, 40.0);
        let table = RouteTable::all_shortest_paths(&t3.net);
        for &a in t3.hosts.iter().take(4) {
            for &b in t3.hosts.iter().rev().take(4) {
                if a == b {
                    continue;
                }
                let p = table.a_path(a, b).unwrap();
                assert_eq!(p.len() - 1, table.path_len(a, b).unwrap());
            }
        }
    }

    #[test]
    fn degraded_table_detours_around_a_cut_link() {
        // Cut the direct S0↔S3 channel of the prototype mesh: ECMP must
        // fall back to the two-hop detours through S1/S2 (§3.5).
        let p = prototype_quartz();
        let cut = p.net.link_between(p.switches[0], p.switches[3]).unwrap();
        let t = RouteTable::degraded(&p.net, |l| l == cut, |_| false);
        assert_eq!(t.path_len(p.switches[0], p.switches[3]), Some(2));
        let hops = t.next_hops(p.switches[0], p.switches[3]);
        assert_eq!(hops.len(), 2, "{hops:?}");
        assert!(!hops.contains(&p.switches[3]));
        // Untouched pairs keep their direct hop.
        assert_eq!(t.next_hops(p.switches[0], p.switches[1]), &[p.switches[1]]);
    }

    #[test]
    fn degraded_table_excludes_a_dead_switch() {
        let p = prototype_quartz();
        let dead = p.switches[2];
        let t = RouteTable::degraded(&p.net, |_| false, |n| n == dead);
        // No route enters, leaves, or targets the dead switch.
        for &s in &p.switches {
            if s != dead {
                assert_eq!(t.path_len(s, dead), None);
                assert!(!t.next_hops(s, p.hosts[0]).contains(&dead));
            }
        }
        // Its hosts are cut off; everyone else still talks.
        let orphan = p.hosts[4]; // hosts 4,5 hang off switch 2
        assert_eq!(t.path_len(p.hosts[0], orphan), None);
        assert_eq!(t.path_len(p.hosts[0], p.hosts[7]), Some(3));
    }

    #[test]
    fn unreachable_is_none() {
        let mut net = Network::new();
        let a = net.add_host(None);
        let b = net.add_host(None);
        let t = RouteTable::all_shortest_paths(&net);
        assert_eq!(t.path_len(a, b), None);
        assert_eq!(t.ecmp_next(a, b, 0), None);
    }

    #[test]
    fn spanning_tree_uses_single_paths() {
        let p = prototype_quartz();
        // Root the tree at S1: S2↔S3 traffic must detour via S1 even
        // though a direct mesh link exists.
        let t = RouteTable::spanning_tree(&p.net, p.switches[0]);
        let path = t.a_path(p.switches[1], p.switches[2]).unwrap();
        assert!(path.contains(&p.switches[0]), "path {path:?} skips root");
        // Every pair still reachable.
        for &a in &p.hosts {
            for &b in &p.hosts {
                if a != b {
                    assert!(t.path_len(a, b).is_some());
                }
            }
        }
    }

    #[test]
    fn spanning_tree_stretches_mesh_paths() {
        // On the Quartz mesh, STP forfeits the direct links: §3.4's
        // argument for ECMP over plain Ethernet.
        let p = prototype_quartz();
        let ecmp = RouteTable::all_shortest_paths(&p.net);
        let stp = RouteTable::spanning_tree(&p.net, p.switches[0]);
        let mut longer = 0;
        for &a in &p.hosts {
            for &b in &p.hosts {
                if a == b {
                    continue;
                }
                let e = ecmp.path_len(a, b).unwrap();
                let s = stp.path_len(a, b).unwrap();
                assert!(s >= e);
                if s > e {
                    longer += 1;
                }
            }
        }
        assert!(longer > 0, "expected some stretched STP paths");
    }

    #[test]
    fn spanning_tree_on_three_tier_never_shortens() {
        let t3 = three_tier(2, 2, 1, 2, 10.0, 40.0);
        let ecmp = RouteTable::all_shortest_paths(&t3.net);
        let stp = RouteTable::spanning_tree(&t3.net, t3.cores[0]);
        for &a in &t3.hosts {
            for &b in &t3.hosts {
                if a != b {
                    assert!(stp.path_len(a, b).unwrap() >= ecmp.path_len(a, b).unwrap());
                }
            }
        }
        let _ = SwitchRole::Core;
    }
}
