//! # quartz-topology
//!
//! Datacenter network topologies for the Quartz reproduction (Liu et al.,
//! SIGCOMM 2014).
//!
//! The paper analyzes five representative structures (§5, Table 9) and
//! simulates six architectures (§7, Figure 15). This crate builds all of
//! them on one graph model:
//!
//! * [`graph`] — the [`Network`] type: hosts and switches, full-duplex
//!   links with bandwidth, rack placement.
//! * [`builders`] — generators: two-tier and three-tier multi-root trees,
//!   Fat-Tree, BCube, Jellyfish, the Quartz full mesh, the Figure 15
//!   composites (Quartz in core / edge / both, Quartz-in-Jellyfish), and
//!   the §6 four-switch prototype in both its Quartz and rewired
//!   two-tier-tree forms.
//! * [`route`] — routing: all-shortest-paths ECMP next-hop tables,
//!   spanning-tree (single-path L2) tables, and Valiant load balancing
//!   intermediates.
//! * [`metrics`] — the Table 9 columns: uncongested latency, switch
//!   count, wiring complexity, and path diversity (edge-disjoint paths by
//!   max-flow).
//! * [`partition`] — spatial-domain partitioning (ring arcs, whole pods,
//!   BFS-growth fallback) for the sharded simulation engine.
//! * [`spain`] — the §6 prototype's SPAIN-style per-VLAN spanning trees
//!   for application-selected multipath.
//! * [`dot`] — Graphviz export of any topology.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod builders;
pub mod dot;
pub mod graph;
pub mod metrics;
pub mod partition;
pub mod ports;
pub mod route;
pub mod spain;

pub use graph::{LinkId, Network, Node, NodeId, NodeKind, SwitchRole};
pub use partition::{spatial_domains, Partition};
pub use ports::{validate_port_budget, PortBudget, PortViolation};
pub use route::{FlatRoutes, RouteChange, RouteTable};
pub use spain::SpainFabric;
