//! The network graph model: hosts, switches, and full-duplex links.
//!
//! Nodes are hosts (servers) or switches; switches carry a [`SwitchRole`]
//! so generators can tag tiers (ToR / aggregation / core / Quartz-ring
//! member) and the simulator can apply the right latency model. Links are
//! undirected (full duplex, equal rate each way) with a bandwidth in
//! Gb/s. Rack placement supports locality-aware workload generators and
//! the wiring-complexity metric.

use std::fmt;

/// Index of a node in a [`Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Index of a link in a [`Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Where a switch sits in the architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SwitchRole {
    /// Top-of-rack (edge) switch — low-latency cut-through.
    TopOfRack,
    /// Aggregation-tier switch — low-latency cut-through.
    Aggregation,
    /// Core-tier switch — high-port-count store-and-forward.
    Core,
    /// Member of a Quartz ring (the `usize` is the ring's index within
    /// the topology) — low-latency cut-through.
    QuartzRing(usize),
}

/// What a node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A server. In server-centric designs (BCube) hosts also forward.
    Host,
    /// A packet switch with the given role.
    Switch(SwitchRole),
}

impl NodeKind {
    /// True for hosts.
    pub fn is_host(&self) -> bool {
        matches!(self, NodeKind::Host)
    }

    /// True for switches of any role.
    pub fn is_switch(&self) -> bool {
        matches!(self, NodeKind::Switch(_))
    }
}

/// A node of the network.
#[derive(Clone, Debug)]
pub struct Node {
    /// The node's id (its index).
    pub id: NodeId,
    /// Host or switch.
    pub kind: NodeKind,
    /// Rack the node lives in, when meaningful.
    pub rack: Option<usize>,
}

/// A full-duplex link with symmetric bandwidth.
#[derive(Clone, Debug)]
pub struct Link {
    /// The link's id (its index).
    pub id: LinkId,
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Bandwidth per direction, Gb/s.
    pub bandwidth_gbps: f64,
}

impl Link {
    /// The endpoint opposite `n`.
    ///
    /// # Panics
    /// Panics if `n` is not an endpoint.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("{n} is not an endpoint of {}", self.id)
        }
    }
}

/// A datacenter network: nodes, links, adjacency.
#[derive(Clone, Debug, Default)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// `adj[node] = [(neighbor, link)]`.
    adj: Vec<Vec<(NodeId, LinkId)>>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a host in `rack`.
    pub fn add_host(&mut self, rack: Option<usize>) -> NodeId {
        self.add_node(NodeKind::Host, rack)
    }

    /// Adds a switch with `role` in `rack`.
    pub fn add_switch(&mut self, role: SwitchRole, rack: Option<usize>) -> NodeId {
        self.add_node(NodeKind::Switch(role), rack)
    }

    fn add_node(&mut self, kind: NodeKind, rack: Option<usize>) -> NodeId {
        debug_assert!(self.nodes.len() <= u32::MAX as usize, "node ids fit u32");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { id, kind, rack });
        self.adj.push(Vec::new());
        id
    }

    /// Connects `a` and `b` with a full-duplex link of `gbps` per
    /// direction.
    ///
    /// # Panics
    /// Panics on self-loops, unknown nodes, or non-positive bandwidth.
    pub fn connect(&mut self, a: NodeId, b: NodeId, gbps: f64) -> LinkId {
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(gbps > 0.0, "bandwidth must be positive");
        assert!((a.0 as usize) < self.nodes.len() && (b.0 as usize) < self.nodes.len());
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id,
            a,
            b,
            bandwidth_gbps: gbps,
        });
        self.adj[a.0 as usize].push((b, id));
        self.adj[b.0 as usize].push((a, id));
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The node with id `n`.
    pub fn node(&self, n: NodeId) -> &Node {
        &self.nodes[n.0 as usize]
    }

    /// The link with id `l`.
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.0 as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// All links.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// All host ids.
    pub fn hosts(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_host())
            .map(|n| n.id)
            .collect()
    }

    /// All switch ids.
    pub fn switches(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_switch())
            .map(|n| n.id)
            .collect()
    }

    /// Switches with a specific role.
    pub fn switches_with_role(&self, role: SwitchRole) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Switch(role))
            .map(|n| n.id)
            .collect()
    }

    /// Neighbors of `n` as `(neighbor, link)` pairs.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adj[n.0 as usize]
    }

    /// Degree of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.0 as usize].len()
    }

    /// The link between `a` and `b`, if one exists (first match).
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adj[a.0 as usize]
            .iter()
            .find(|(nb, _)| *nb == b)
            .map(|(_, l)| *l)
    }

    /// Number of switch-to-switch cables — the paper's "wiring
    /// complexity" (§5: "the number of cross-rack links").
    pub fn switch_to_switch_links(&self) -> usize {
        self.links
            .iter()
            .filter(|l| self.node(l.a).kind.is_switch() && self.node(l.b).kind.is_switch())
            .count()
    }

    /// Whether every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &(nb, _) in self.neighbors(n) {
                if !seen[nb.0 as usize] {
                    seen[nb.0 as usize] = true;
                    count += 1;
                    stack.push(nb);
                }
            }
        }
        count == self.nodes.len()
    }

    /// The switch a host hangs off (its first switch neighbor), if any.
    pub fn host_tor(&self, host: NodeId) -> Option<NodeId> {
        self.neighbors(host)
            .iter()
            .map(|(nb, _)| *nb)
            .find(|nb| self.node(*nb).kind.is_switch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new();
        let s = net.add_switch(SwitchRole::TopOfRack, Some(0));
        let h1 = net.add_host(Some(0));
        let h2 = net.add_host(Some(0));
        net.connect(h1, s, 10.0);
        net.connect(h2, s, 10.0);
        (net, s, h1, h2)
    }

    #[test]
    fn build_and_query() {
        let (net, s, h1, h2) = tiny();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.link_count(), 2);
        assert_eq!(net.hosts(), vec![h1, h2]);
        assert_eq!(net.switches(), vec![s]);
        assert_eq!(net.degree(s), 2);
        assert_eq!(net.host_tor(h1), Some(s));
    }

    #[test]
    fn link_between_and_other() {
        let (net, s, h1, _) = tiny();
        let l = net.link_between(h1, s).unwrap();
        assert_eq!(net.link(l).other(h1), s);
        assert_eq!(net.link(l).other(s), h1);
        assert_eq!(net.link_between(h1, NodeId(2)), None);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_rejects_non_endpoint() {
        let (net, _, h1, h2) = tiny();
        let l = net.link_between(h1, net.host_tor(h1).unwrap()).unwrap();
        let _ = net.link(l).other(h2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn no_self_loops() {
        let mut net = Network::new();
        let s = net.add_switch(SwitchRole::Core, None);
        net.connect(s, s, 10.0);
    }

    #[test]
    fn switch_to_switch_count_ignores_host_links() {
        let mut net = Network::new();
        let s1 = net.add_switch(SwitchRole::TopOfRack, Some(0));
        let s2 = net.add_switch(SwitchRole::TopOfRack, Some(1));
        let h = net.add_host(Some(0));
        net.connect(s1, s2, 40.0);
        net.connect(h, s1, 10.0);
        assert_eq!(net.switch_to_switch_links(), 1);
    }

    #[test]
    fn connectivity() {
        let (mut net, _, _, _) = tiny();
        assert!(net.is_connected());
        let lonely = net.add_host(Some(9));
        assert!(!net.is_connected());
        let s = net.switches()[0];
        net.connect(lonely, s, 10.0);
        assert!(net.is_connected());
    }

    #[test]
    fn roles_filter() {
        let mut net = Network::new();
        net.add_switch(SwitchRole::Core, None);
        net.add_switch(SwitchRole::QuartzRing(0), Some(1));
        net.add_switch(SwitchRole::QuartzRing(1), Some(2));
        assert_eq!(net.switches_with_role(SwitchRole::Core).len(), 1);
        assert_eq!(net.switches_with_role(SwitchRole::QuartzRing(0)).len(), 1);
        assert_eq!(net.switches().len(), 3);
    }

    #[test]
    fn empty_network_is_connected() {
        assert!(Network::new().is_connected());
    }
}
