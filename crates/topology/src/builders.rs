//! Topology builders for every network structure the paper evaluates.
//!
//! Each builder returns a small struct exposing the [`Network`] plus the
//! node groups an experiment needs (hosts, ToRs, cores, …) in a
//! deterministic order:
//!
//! * switches are added before hosts, and hosts are grouped contiguously
//!   under their switch, so `hosts[0..h]` is the first rack;
//! * every stochastic builder (Jellyfish and the Quartz/Jellyfish
//!   composite) takes an explicit seed and is reproducible.
//!
//! The Quartz structures model the logical view (§3): the WDM ring
//! realizes a full mesh of ToR switches, so a "Quartz ring" here is a
//! clique of [`SwitchRole::QuartzRing`] switches; which physical fiber a
//! channel rides lives in `quartz_core` (channel plans, fault model),
//! not in this graph.

use crate::graph::{Network, NodeId, SwitchRole};
use quartz_core::rng::StdRng;

/// A Quartz logical mesh: `switches` forming a clique, with hosts.
#[derive(Clone, Debug)]
pub struct QuartzMesh {
    /// The network graph.
    pub net: Network,
    /// Mesh (ToR) switches, in ring order.
    pub switches: Vec<NodeId>,
    /// Hosts, grouped contiguously per switch.
    pub hosts: Vec<NodeId>,
}

/// Builds an `m`-switch Quartz logical mesh (§3): every switch pair gets
/// a dedicated channel of `chan_gbps`, every switch serves
/// `hosts_per_sw` hosts at `host_gbps`. Switch `i` is rack `i`.
pub fn quartz_mesh(m: usize, hosts_per_sw: usize, host_gbps: f64, chan_gbps: f64) -> QuartzMesh {
    assert!(m >= 2, "a mesh needs at least two switches");
    let mut net = Network::new();
    let switches: Vec<NodeId> = (0..m)
        .map(|i| net.add_switch(SwitchRole::QuartzRing(0), Some(i)))
        .collect();
    for a in 0..m {
        for b in (a + 1)..m {
            net.connect(switches[a], switches[b], chan_gbps);
        }
    }
    let mut hosts = Vec::with_capacity(m * hosts_per_sw);
    for (i, &sw) in switches.iter().enumerate() {
        for _ in 0..hosts_per_sw {
            let h = net.add_host(Some(i));
            net.connect(h, sw, host_gbps);
            hosts.push(h);
        }
    }
    QuartzMesh {
        net,
        switches,
        hosts,
    }
}

/// A dual-ToR Quartz mesh (§3.1's scalability trick: "using a dual ToR
/// switch design … a maximum of 2080 ports").
#[derive(Clone, Debug)]
pub struct DualTorMesh {
    /// The network graph.
    pub net: Network,
    /// Both meshes' switches: `switches[0]` and `switches[1]` are the
    /// primary and secondary ToR of rack 0, and so on.
    pub switches: Vec<NodeId>,
    /// Hosts, grouped per rack; each connects to both of its ToRs.
    pub hosts: Vec<NodeId>,
}

/// Builds a dual-ToR Quartz design: `racks` racks, each with **two**
/// mesh switches; each mesh is a full clique at `chan_gbps`, and every
/// host attaches to both of its rack's ToRs at `host_gbps`.
pub fn dual_tor_mesh(
    racks: usize,
    hosts_per_rack: usize,
    host_gbps: f64,
    chan_gbps: f64,
) -> DualTorMesh {
    assert!(racks >= 2, "a mesh needs at least two racks");
    let mut net = Network::new();
    let mut switches = Vec::with_capacity(2 * racks);
    for r in 0..racks {
        for ring in 0..2 {
            switches.push(net.add_switch(SwitchRole::QuartzRing(ring), Some(r)));
        }
    }
    for ring in 0..2usize {
        for a in 0..racks {
            for b in (a + 1)..racks {
                net.connect(switches[2 * a + ring], switches[2 * b + ring], chan_gbps);
            }
        }
    }
    let mut hosts = Vec::with_capacity(racks * hosts_per_rack);
    for r in 0..racks {
        for _ in 0..hosts_per_rack {
            let h = net.add_host(Some(r));
            net.connect(h, switches[2 * r], host_gbps);
            net.connect(h, switches[2 * r + 1], host_gbps);
            hosts.push(h);
        }
    }
    DualTorMesh {
        net,
        switches,
        hosts,
    }
}

/// A two-tier tree (Table 9's "2-Tier Tree").
#[derive(Clone, Debug)]
pub struct TwoTier {
    /// The network graph.
    pub net: Network,
    /// Root (aggregation) switches.
    pub roots: Vec<NodeId>,
    /// Top-of-rack switches.
    pub tors: Vec<NodeId>,
    /// Hosts, grouped per ToR.
    pub hosts: Vec<NodeId>,
}

/// Builds a two-tier tree: `tors` ToRs, each with `hosts_per_tor` hosts
/// at `host_gbps`, uplinked to every one of `roots` root switches at
/// `up_gbps`.
pub fn two_tier(
    tors: usize,
    hosts_per_tor: usize,
    roots: usize,
    host_gbps: f64,
    up_gbps: f64,
) -> TwoTier {
    assert!(tors >= 1 && roots >= 1);
    let mut net = Network::new();
    let roots: Vec<NodeId> = (0..roots)
        .map(|_| net.add_switch(SwitchRole::Aggregation, None))
        .collect();
    let tors_v: Vec<NodeId> = (0..tors)
        .map(|r| net.add_switch(SwitchRole::TopOfRack, Some(r)))
        .collect();
    for &t in &tors_v {
        for &r in &roots {
            net.connect(t, r, up_gbps);
        }
    }
    let mut hosts = Vec::with_capacity(tors * hosts_per_tor);
    for (r, &t) in tors_v.iter().enumerate() {
        for _ in 0..hosts_per_tor {
            let h = net.add_host(Some(r));
            net.connect(h, t, host_gbps);
            hosts.push(h);
        }
    }
    TwoTier {
        net,
        roots,
        tors: tors_v,
        hosts,
    }
}

/// A three-tier tree (ToR → aggregation → core).
#[derive(Clone, Debug)]
pub struct ThreeTier {
    /// The network graph.
    pub net: Network,
    /// Core switches (store-and-forward CCS boxes).
    pub cores: Vec<NodeId>,
    /// Aggregation switches, two per pod.
    pub aggs: Vec<NodeId>,
    /// Top-of-rack switches, grouped per pod.
    pub tors: Vec<NodeId>,
    /// Hosts, grouped per ToR.
    pub hosts: Vec<NodeId>,
}

/// Builds a three-tier tree: `pods` pods of `tors_per_pod` ToRs, each
/// ToR with `hosts_per_tor` hosts at `host_gbps`. Every pod has **two**
/// aggregation switches (so each ToR has two equal-cost uplink choices);
/// every aggregation switch uplinks to all `cores` core switches. Both
/// uplink tiers use `up_gbps`. The global rack index is the global ToR
/// index, so racks `0` and `1` share pod 0's aggregation pair.
pub fn three_tier(
    tors_per_pod: usize,
    pods: usize,
    hosts_per_tor: usize,
    cores: usize,
    host_gbps: f64,
    up_gbps: f64,
) -> ThreeTier {
    assert!(tors_per_pod >= 1 && pods >= 1 && cores >= 1);
    let mut net = Network::new();
    let cores_v: Vec<NodeId> = (0..cores)
        .map(|_| net.add_switch(SwitchRole::Core, None))
        .collect();
    let mut aggs = Vec::with_capacity(2 * pods);
    let mut tors = Vec::with_capacity(pods * tors_per_pod);
    let mut hosts = Vec::with_capacity(pods * tors_per_pod * hosts_per_tor);
    for pod in 0..pods {
        let pod_aggs: Vec<NodeId> = (0..2)
            .map(|_| net.add_switch(SwitchRole::Aggregation, None))
            .collect();
        for &a in &pod_aggs {
            for &c in &cores_v {
                net.connect(a, c, up_gbps);
            }
        }
        for t in 0..tors_per_pod {
            let rack = pod * tors_per_pod + t;
            let tor = net.add_switch(SwitchRole::TopOfRack, Some(rack));
            for &a in &pod_aggs {
                net.connect(tor, a, up_gbps);
            }
            for _ in 0..hosts_per_tor {
                let h = net.add_host(Some(rack));
                net.connect(h, tor, host_gbps);
                hosts.push(h);
            }
            tors.push(tor);
        }
        aggs.extend(pod_aggs);
    }
    ThreeTier {
        net,
        cores: cores_v,
        aggs,
        tors,
        hosts,
    }
}

/// The §6 testbeds: four switches, a handful of hosts.
#[derive(Clone, Debug)]
pub struct Prototype {
    /// The network graph.
    pub net: Network,
    /// Switches, in wiring order.
    pub switches: Vec<NodeId>,
    /// Hosts, grouped per switch.
    pub hosts: Vec<NodeId>,
}

/// The §6 Quartz prototype: four 1 GbE switches in a full mesh (the
/// optical ring realizes the K4), two servers per switch.
pub fn prototype_quartz() -> Prototype {
    let q = quartz_mesh(4, 2, 1.0, 1.0);
    Prototype {
        net: q.net,
        switches: q.switches,
        hosts: q.hosts,
    }
}

/// The §6 baseline: the same switches rewired as a two-tier tree — one
/// root, three ToRs with two servers each, all links 1 GbE.
pub fn prototype_two_tier() -> Prototype {
    let t = two_tier(3, 2, 1, 1.0, 1.0);
    let mut switches = t.roots;
    switches.extend(t.tors);
    Prototype {
        net: t.net,
        switches,
        hosts: t.hosts,
    }
}

/// A k-ary fat-tree.
#[derive(Clone, Debug)]
pub struct FatTree {
    /// The network graph.
    pub net: Network,
    /// Core switches, `(k/2)²` of them.
    pub cores: Vec<NodeId>,
    /// Aggregation switches, `k/2` per pod.
    pub aggs: Vec<NodeId>,
    /// Edge (ToR) switches, `k/2` per pod.
    pub edges: Vec<NodeId>,
    /// Hosts, `k/2` per edge switch.
    pub hosts: Vec<NodeId>,
}

/// Builds the standard k-ary fat-tree (`k` even): `k` pods, each with
/// `k/2` edge and `k/2` aggregation switches; `(k/2)²` cores; `k/2`
/// hosts per edge switch; all links at `gbps`.
pub fn fat_tree(k: usize, gbps: f64) -> FatTree {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
    let half = k / 2;
    let mut net = Network::new();
    let cores: Vec<NodeId> = (0..half * half)
        .map(|_| net.add_switch(SwitchRole::Core, None))
        .collect();
    let mut aggs = Vec::with_capacity(k * half);
    let mut edges = Vec::with_capacity(k * half);
    let mut hosts = Vec::with_capacity(k * half * half);
    for pod in 0..k {
        let pod_aggs: Vec<NodeId> = (0..half)
            .map(|_| net.add_switch(SwitchRole::Aggregation, None))
            .collect();
        // Aggregation switch j of every pod owns core group j.
        for (j, &a) in pod_aggs.iter().enumerate() {
            for c in 0..half {
                net.connect(a, cores[j * half + c], gbps);
            }
        }
        for e in 0..half {
            let rack = pod * half + e;
            let edge = net.add_switch(SwitchRole::TopOfRack, Some(rack));
            for &a in &pod_aggs {
                net.connect(edge, a, gbps);
            }
            for _ in 0..half {
                let h = net.add_host(Some(rack));
                net.connect(h, edge, gbps);
                hosts.push(h);
            }
            edges.push(edge);
        }
        aggs.extend(pod_aggs);
    }
    FatTree {
        net,
        cores,
        aggs,
        edges,
        hosts,
    }
}

/// A two-stage leaf–spine Clos.
#[derive(Clone, Debug)]
pub struct LeafSpine {
    /// The network graph.
    pub net: Network,
    /// Spine switches.
    pub spines: Vec<NodeId>,
    /// Leaf switches.
    pub leaves: Vec<NodeId>,
    /// Hosts, grouped per leaf.
    pub hosts: Vec<NodeId>,
}

/// Builds a leaf–spine Clos: every leaf connects to every spine with
/// `links_per_pair` parallel links at `gbps`; `hosts_per_leaf` hosts per
/// leaf.
pub fn leaf_spine(
    leaves: usize,
    spines: usize,
    hosts_per_leaf: usize,
    links_per_pair: usize,
    gbps: f64,
) -> LeafSpine {
    assert!(leaves >= 1 && spines >= 1 && links_per_pair >= 1);
    let mut net = Network::new();
    let spines_v: Vec<NodeId> = (0..spines)
        .map(|_| net.add_switch(SwitchRole::Aggregation, None))
        .collect();
    let leaves_v: Vec<NodeId> = (0..leaves)
        .map(|r| net.add_switch(SwitchRole::TopOfRack, Some(r)))
        .collect();
    for &l in &leaves_v {
        for &s in &spines_v {
            for _ in 0..links_per_pair {
                net.connect(l, s, gbps);
            }
        }
    }
    let mut hosts = Vec::with_capacity(leaves * hosts_per_leaf);
    for (r, &l) in leaves_v.iter().enumerate() {
        for _ in 0..hosts_per_leaf {
            let h = net.add_host(Some(r));
            net.connect(h, l, gbps);
            hosts.push(h);
        }
    }
    LeafSpine {
        net,
        spines: spines_v,
        leaves: leaves_v,
        hosts,
    }
}

/// Table 9's 1k-port "Fat-Tree" instance: a 3-stage folded Clos of
/// 64-port switches — 32 leaves × 32 hosts, 16 spines, two parallel
/// links per leaf–spine pair (1024 host ports, path diversity 32).
pub fn table9_fat_tree() -> LeafSpine {
    leaf_spine(32, 16, 32, 2, 10.0)
}

/// A Jellyfish random graph.
#[derive(Clone, Debug)]
pub struct Jellyfish {
    /// The network graph.
    pub net: Network,
    /// Switches.
    pub switches: Vec<NodeId>,
    /// Hosts, grouped per switch.
    pub hosts: Vec<NodeId>,
}

/// Builds a Jellyfish topology: `switches` switches, each with `degree`
/// switch-facing ports at `link_gbps` and `hosts_per_sw` hosts at
/// `host_gbps`. Deterministic for a given `seed`, and **always
/// connected**: two ports per switch form a Hamiltonian ring, the rest
/// are wired by a seeded random matching (Jellyfish's own construction
/// ends with exactly this kind of local repair, so a ring backbone is a
/// faithful simplification).
pub fn jellyfish(
    switches: usize,
    degree: usize,
    hosts_per_sw: usize,
    host_gbps: f64,
    link_gbps: f64,
    seed: u64,
) -> Jellyfish {
    assert!(switches >= 3, "jellyfish needs at least three switches");
    assert!(degree >= 2, "jellyfish needs degree ≥ 2 to stay connected");
    let mut net = Network::new();
    let switches_v: Vec<NodeId> = (0..switches)
        .map(|r| net.add_switch(SwitchRole::TopOfRack, Some(r)))
        .collect();
    // Ring backbone: consumes two of each switch's `degree` ports.
    for i in 0..switches {
        net.connect(switches_v[i], switches_v[(i + 1) % switches], link_gbps);
    }
    // Random matching over the remaining stubs.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stubs: Vec<usize> = (0..switches)
        .flat_map(|i| std::iter::repeat_n(i, degree.saturating_sub(2)))
        .collect();
    // Fisher–Yates via the in-tree RNG, then pair off; a stub pair that
    // lands on one switch is dropped (self-loops are not allowed).
    use quartz_core::rng::SliceRandom;
    stubs.shuffle(&mut rng);
    while stubs.len() >= 2 {
        let a = stubs.pop().expect("len checked");
        let b = stubs.pop().expect("len checked");
        if a != b {
            net.connect(switches_v[a], switches_v[b], link_gbps);
        }
    }
    let mut hosts = Vec::with_capacity(switches * hosts_per_sw);
    for (r, &sw) in switches_v.iter().enumerate() {
        for _ in 0..hosts_per_sw {
            let h = net.add_host(Some(r));
            net.connect(h, sw, host_gbps);
            hosts.push(h);
        }
    }
    Jellyfish {
        net,
        switches: switches_v,
        hosts,
    }
}

/// A BCube server-centric structure.
#[derive(Clone, Debug)]
pub struct BCube {
    /// The network graph.
    pub net: Network,
    /// Switches, level 0 first.
    pub switches: Vec<NodeId>,
    /// Hosts (servers), in address order.
    pub hosts: Vec<NodeId>,
}

/// Builds BCube(`n`, `k`): `n^(k+1)` servers addressed in base `n`,
/// `k + 1` levels of `n^k` switches; level-`l` switch `j` connects the
/// `n` servers whose address agrees with `j` outside digit `l`. Servers
/// relay packets between levels (the §2.1.5 OS-stack penalty).
pub fn bcube(n: usize, k: usize, gbps: f64) -> BCube {
    assert!(n >= 2, "bcube needs n ≥ 2");
    let n_hosts = n.pow(k as u32 + 1);
    let per_level = n.pow(k as u32);
    let mut net = Network::new();
    let mut switches = Vec::with_capacity((k + 1) * per_level);
    for _level in 0..=k {
        for _ in 0..per_level {
            switches.push(net.add_switch(SwitchRole::TopOfRack, None));
        }
    }
    // Rack = level-0 switch index (the physical rack in BCube packaging).
    let hosts: Vec<NodeId> = (0..n_hosts).map(|h| net.add_host(Some(h / n))).collect();
    for (h, &host) in hosts.iter().enumerate() {
        for level in 0..=k {
            // Remove digit `level` from the address: the switch index.
            let high = h / n.pow(level as u32 + 1) * n.pow(level as u32);
            let low = h % n.pow(level as u32);
            let j = high + low;
            net.connect(host, switches[level * per_level + j], gbps);
        }
    }
    BCube {
        net,
        switches,
        hosts,
    }
}

/// A DCell server-centric structure.
#[derive(Clone, Debug)]
pub struct DCell {
    /// The network graph.
    pub net: Network,
    /// The per-cell mini-switches.
    pub switches: Vec<NodeId>,
    /// Hosts, grouped per cell.
    pub hosts: Vec<NodeId>,
}

/// Builds DCell₁(`n`): `n + 1` cells of `n` servers, each cell with one
/// mini-switch; server `j` of cell `i` cross-links to server `i` of cell
/// `j + 1` (for `i ≤ j`), giving full cell-to-cell connectivity through
/// relaying servers.
pub fn dcell_1(n: usize, gbps: f64) -> DCell {
    assert!(n >= 2, "dcell needs n ≥ 2");
    let cells = n + 1;
    let mut net = Network::new();
    let switches: Vec<NodeId> = (0..cells)
        .map(|c| net.add_switch(SwitchRole::TopOfRack, Some(c)))
        .collect();
    let mut hosts = Vec::with_capacity(cells * n);
    for (c, &sw) in switches.iter().enumerate() {
        for _ in 0..n {
            let h = net.add_host(Some(c));
            net.connect(h, sw, gbps);
            hosts.push(h);
        }
    }
    // Cross links: (cell i, server j) ↔ (cell j+1, server i) for i ≤ j.
    for i in 0..cells {
        for j in i..n {
            let a = hosts[i * n + j];
            let b = hosts[(j + 1) * n + i];
            net.connect(a, b, gbps);
        }
    }
    DCell {
        net,
        switches,
        hosts,
    }
}

/// A CamCube 3D-torus structure.
#[derive(Clone, Debug)]
pub struct CamCube {
    /// The network graph.
    pub net: Network,
    /// Hosts in (x, y, z) raster order.
    pub hosts: Vec<NodeId>,
}

/// Builds CamCube(`k`): a switchless `k × k × k` torus of servers, each
/// directly cabled to its six neighbors (every hop is a relaying
/// server).
pub fn camcube(k: usize, gbps: f64) -> CamCube {
    assert!(k >= 2, "camcube needs k ≥ 2");
    let mut net = Network::new();
    let idx = |x: usize, y: usize, z: usize| (x * k + y) * k + z;
    let hosts: Vec<NodeId> = (0..k * k * k)
        .map(|i| net.add_host(Some(i / (k * k))))
        .collect();
    for x in 0..k {
        for y in 0..k {
            for z in 0..k {
                let a = hosts[idx(x, y, z)];
                // +1 neighbor in each dimension covers every torus edge
                // once; skip the wrap link when k == 2 (it would be a
                // parallel duplicate of the +1 link).
                for (nx, ny, nz) in [
                    ((x + 1) % k, y, z),
                    (x, (y + 1) % k, z),
                    (x, y, (z + 1) % k),
                ] {
                    if k == 2 && (nx < x || ny < y || nz < z) {
                        continue;
                    }
                    net.connect(a, hosts[idx(nx, ny, nz)], gbps);
                }
            }
        }
    }
    CamCube { net, hosts }
}

/// A §7 composite: Quartz rings embedded in a larger wired structure.
#[derive(Clone, Debug)]
pub struct Composite {
    /// The network graph.
    pub net: Network,
    /// Edge-tier switches (ToRs or ring switches), grouped per ring/pod.
    pub edges: Vec<NodeId>,
    /// Upper-tier switches (cores or core-ring switches).
    pub uppers: Vec<NodeId>,
    /// Hosts, grouped per edge switch.
    pub hosts: Vec<NodeId>,
}

/// Adds one Quartz ring (a clique of [`SwitchRole::QuartzRing`]
/// switches) to `net`; rack numbering continues from `rack0`.
fn add_ring(
    net: &mut Network,
    ring_idx: usize,
    count: usize,
    rack0: usize,
    chan_gbps: f64,
) -> Vec<NodeId> {
    let sws: Vec<NodeId> = (0..count)
        .map(|i| net.add_switch(SwitchRole::QuartzRing(ring_idx), Some(rack0 + i)))
        .collect();
    for a in 0..count {
        for b in (a + 1)..count {
            net.connect(sws[a], sws[b], chan_gbps);
        }
    }
    sws
}

fn attach_hosts(net: &mut Network, sws: &[NodeId], per_sw: usize, gbps: f64) -> Vec<NodeId> {
    let mut hosts = Vec::with_capacity(sws.len() * per_sw);
    for &sw in sws {
        let rack = net.node(sw).rack;
        for _ in 0..per_sw {
            let h = net.add_host(rack);
            net.connect(h, sw, gbps);
            hosts.push(h);
        }
    }
    hosts
}

/// Quartz in the core (§7): a three-tier edge — `pods` pods of
/// `tors_per_pod` ToRs with two aggregation switches each — whose core
/// tier is replaced by an `m`-switch Quartz ring; every aggregation
/// switch uplinks to every ring switch at 40 G.
pub fn quartz_in_core(
    tors_per_pod: usize,
    pods: usize,
    hosts_per_tor: usize,
    m: usize,
) -> Composite {
    assert!(m >= 2 && pods >= 1 && tors_per_pod >= 1);
    let mut net = Network::new();
    let core = add_ring(&mut net, 0, m, 10_000, 40.0);
    let mut edges = Vec::with_capacity(pods * tors_per_pod);
    let mut hosts = Vec::with_capacity(pods * tors_per_pod * hosts_per_tor);
    for pod in 0..pods {
        let aggs: Vec<NodeId> = (0..2)
            .map(|_| net.add_switch(SwitchRole::Aggregation, None))
            .collect();
        for &a in &aggs {
            for &c in &core {
                net.connect(a, c, 40.0);
            }
        }
        for t in 0..tors_per_pod {
            let rack = pod * tors_per_pod + t;
            let tor = net.add_switch(SwitchRole::TopOfRack, Some(rack));
            for &a in &aggs {
                net.connect(tor, a, 40.0);
            }
            for _ in 0..hosts_per_tor {
                let h = net.add_host(Some(rack));
                net.connect(h, tor, 10.0);
                hosts.push(h);
            }
            edges.push(tor);
        }
    }
    Composite {
        net,
        edges,
        uppers: core,
        hosts,
    }
}

/// Quartz in the edge (§7): `rings` edge rings of `sw_per_ring` mesh
/// switches (each with `hosts_per_sw` hosts at 10 G), every edge switch
/// uplinked at 40 G to each of `cores` store-and-forward core switches.
pub fn quartz_in_edge(
    rings: usize,
    sw_per_ring: usize,
    hosts_per_sw: usize,
    cores: usize,
) -> Composite {
    assert!(rings >= 1 && sw_per_ring >= 2 && cores >= 1);
    let mut net = Network::new();
    let uppers: Vec<NodeId> = (0..cores)
        .map(|_| net.add_switch(SwitchRole::Core, None))
        .collect();
    let mut edges = Vec::with_capacity(rings * sw_per_ring);
    for ring in 0..rings {
        let sws = add_ring(&mut net, ring, sw_per_ring, ring * sw_per_ring, 10.0);
        for &sw in &sws {
            for &c in &uppers {
                net.connect(sw, c, 40.0);
            }
        }
        edges.extend(sws);
    }
    let hosts = attach_hosts(&mut net, &edges, hosts_per_sw, 10.0);
    Composite {
        net,
        edges,
        uppers,
        hosts,
    }
}

/// Quartz in the edge **and** core (§7): `rings` edge rings whose
/// switches uplink at 40 G into a `core_m`-switch core ring — edge
/// switch `i` of every ring connects to core switch `i mod core_m`.
pub fn quartz_in_edge_and_core(
    rings: usize,
    sw_per_ring: usize,
    hosts_per_sw: usize,
    core_m: usize,
) -> Composite {
    assert!(rings >= 1 && sw_per_ring >= 2 && core_m >= 2);
    let mut net = Network::new();
    // All channels run at the ring wavelength rate (10 Gb/s): a rate
    // mismatch at the edge→core hop would force store-and-forward and
    // cost a serialization delay on every inter-ring packet (§4.2).
    let uppers = add_ring(&mut net, rings, core_m, 10_000, 10.0);
    let mut edges = Vec::with_capacity(rings * sw_per_ring);
    for ring in 0..rings {
        let sws = add_ring(&mut net, ring, sw_per_ring, ring * sw_per_ring, 10.0);
        for (i, &sw) in sws.iter().enumerate() {
            // Two uplinks, offset by half the core ring: ECMP spreads
            // inter-ring traffic over both while the worst host pair
            // still crosses two edge + two core switches (Table 9).
            net.connect(sw, uppers[i % core_m], 10.0);
            net.connect(sw, uppers[(i + 2) % core_m], 10.0);
        }
        edges.extend(sws);
    }
    let hosts = attach_hosts(&mut net, &edges, hosts_per_sw, 10.0);
    Composite {
        net,
        edges,
        uppers,
        hosts,
    }
}

/// Quartz rings dropped into a Jellyfish backbone (§7's "Quartz can also
/// be applied to … randomly wired structures"): `rings` internally
/// meshed rings; each ring switch additionally gets `ext_degree` random
/// inter-ring links (seeded, ring-backbone-guaranteed connected).
pub fn quartz_in_jellyfish(
    rings: usize,
    sw_per_ring: usize,
    hosts_per_sw: usize,
    ext_degree: usize,
    seed: u64,
) -> Composite {
    assert!(rings >= 2 && sw_per_ring >= 2 && ext_degree >= 2);
    let mut net = Network::new();
    let mut edges = Vec::with_capacity(rings * sw_per_ring);
    let mut ring_of = Vec::with_capacity(rings * sw_per_ring);
    for ring in 0..rings {
        let sws = add_ring(&mut net, ring, sw_per_ring, ring * sw_per_ring, 10.0);
        ring_of.extend(std::iter::repeat_n(ring, sws.len()));
        edges.extend(sws);
    }
    // Inter-ring backbone ring (guarantees connectivity for any seed):
    // switch 0 of ring r links to switch 0 of ring r+1.
    for r in 0..rings {
        net.connect(
            edges[r * sw_per_ring],
            edges[((r + 1) % rings) * sw_per_ring],
            10.0,
        );
    }
    // Remaining external ports: a seeded random matching that only
    // accepts cross-ring pairs.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stubs: Vec<usize> = (0..edges.len())
        .flat_map(|i| {
            let used = usize::from(i % sw_per_ring == 0) * 2;
            std::iter::repeat_n(i, ext_degree.saturating_sub(used))
        })
        .collect();
    use quartz_core::rng::SliceRandom;
    stubs.shuffle(&mut rng);
    while stubs.len() >= 2 {
        let a = stubs.pop().expect("len checked");
        let b = stubs.pop().expect("len checked");
        if ring_of[a] != ring_of[b] {
            net.connect(edges[a], edges[b], 10.0);
        }
    }
    let hosts = attach_hosts(&mut net, &edges, hosts_per_sw, 10.0);
    Composite {
        net,
        edges,
        uppers: Vec::new(),
        hosts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_shape() {
        let q = quartz_mesh(5, 3, 10.0, 10.0);
        assert_eq!(q.switches.len(), 5);
        assert_eq!(q.hosts.len(), 15);
        // K5: 10 channels + 15 host links.
        assert_eq!(q.net.link_count(), 10 + 15);
        assert!(q.net.is_connected());
        // Hosts grouped per switch: the first three share rack 0.
        assert_eq!(q.net.node(q.hosts[0]).rack, Some(0));
        assert_eq!(q.net.node(q.hosts[2]).rack, Some(0));
        assert_eq!(q.net.node(q.hosts[3]).rack, Some(1));
    }

    #[test]
    fn dual_tor_doubles_the_switches() {
        let d = dual_tor_mesh(4, 2, 10.0, 10.0);
        assert_eq!(d.switches.len(), 8);
        assert_eq!(d.hosts.len(), 8);
        // Two K4 meshes + two uplinks per host.
        assert_eq!(d.net.link_count(), 2 * 6 + 2 * 8);
        assert!(d.net.is_connected());
        assert_eq!(d.net.degree(d.hosts[0]), 2);
    }

    #[test]
    fn three_tier_has_two_aggs_per_pod() {
        let t = three_tier(3, 2, 2, 2, 10.0, 40.0);
        assert_eq!(t.tors.len(), 6);
        assert_eq!(t.aggs.len(), 4);
        assert_eq!(t.cores.len(), 2);
        assert_eq!(t.hosts.len(), 12);
        assert!(t.net.is_connected());
        // Each ToR uplinks to exactly its pod's two aggs.
        let nbrs = t.net.neighbors(t.tors[0]);
        let sw_nbrs = nbrs
            .iter()
            .filter(|(n, _)| t.net.node(*n).kind.is_switch())
            .count();
        assert_eq!(sw_nbrs, 2);
    }

    #[test]
    fn fat_tree_counts() {
        let f = fat_tree(4, 10.0);
        assert_eq!(f.cores.len(), 4);
        assert_eq!(f.aggs.len(), 8);
        assert_eq!(f.edges.len(), 8);
        assert_eq!(f.hosts.len(), 16);
        assert!(f.net.is_connected());
    }

    #[test]
    fn table9_fat_tree_matches_the_paper_accounting() {
        let f = table9_fat_tree();
        assert_eq!(f.leaves.len() + f.spines.len(), 48);
        assert_eq!(f.hosts.len(), 1024);
        // 32 leaves × 16 spines × 2 parallel links.
        assert_eq!(f.net.switch_to_switch_links(), 1024);
    }

    #[test]
    fn jellyfish_connected_and_deterministic() {
        for seed in [0u64, 1, 7, 99] {
            let j = jellyfish(10, 4, 2, 10.0, 10.0, seed);
            assert!(j.net.is_connected(), "seed {seed}");
        }
        let a = jellyfish(12, 5, 2, 10.0, 10.0, 3);
        let b = jellyfish(12, 5, 2, 10.0, 10.0, 3);
        assert_eq!(a.net.link_count(), b.net.link_count());
    }

    #[test]
    fn bcube_addressing() {
        let b = bcube(4, 1, 10.0);
        assert_eq!(b.hosts.len(), 16);
        assert_eq!(b.switches.len(), 8);
        assert!(b.net.is_connected());
        // Every server has one port per level.
        assert_eq!(b.net.degree(b.hosts[0]), 2);
    }

    #[test]
    fn dcell_and_camcube_connect() {
        let d = dcell_1(4, 10.0);
        assert_eq!(d.hosts.len(), 20);
        assert!(d.net.is_connected());
        let c = camcube(3, 10.0);
        assert_eq!(c.hosts.len(), 27);
        assert!(c.net.is_connected());
        // Torus: every server has 6 neighbors.
        assert_eq!(c.net.degree(c.hosts[0]), 6);
    }

    #[test]
    fn composites_connect_and_group_hosts() {
        let c1 = quartz_in_core(2, 2, 2, 4);
        assert!(c1.net.is_connected());
        assert_eq!(c1.hosts.len(), 8);
        let c2 = quartz_in_edge(2, 4, 2, 2);
        assert!(c2.net.is_connected());
        assert_eq!(c2.hosts.len(), 16);
        let c3 = quartz_in_edge_and_core(2, 4, 2, 4);
        assert!(c3.net.is_connected());
        assert_eq!(c3.hosts.len(), 16);
        // Ring 0's racks are 0..4 (the fig18 locality filter).
        assert_eq!(c3.net.node(c3.hosts[0]).rack, Some(0));
        assert_eq!(c3.net.node(c3.hosts[7]).rack, Some(3));
        assert_eq!(c3.net.node(c3.hosts[8]).rack, Some(4));
        let c4 = quartz_in_jellyfish(4, 4, 4, 4, 71);
        assert!(c4.net.is_connected());
        assert_eq!(c4.hosts.len(), 64);
    }
}
