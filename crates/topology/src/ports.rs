//! Port-budget validation: does a generated topology actually fit on the
//! devices it claims to use?
//!
//! Table 16's switches have hard port counts (64 × 10 G for the ULL,
//! 768 × 10 G for the CCS). A topology generator can silently exceed
//! them — a 40-switch "Quartz ring" would need 39 trunk + n server ports.
//! [`validate_port_budget`] checks every switch's degree (weighted by
//! link rate, in 10 G-port equivalents) against a per-role budget.

use crate::graph::{Network, NodeId, NodeKind, SwitchRole};
use std::fmt;

/// Port budgets per switch role, in 10 G-port equivalents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PortBudget {
    /// ToR / aggregation / Quartz-ring devices (the paper's ULL: 64).
    pub edge_ports_10g: u32,
    /// Core devices (the paper's CCS: 768).
    pub core_ports_10g: u32,
}

impl Default for PortBudget {
    fn default() -> Self {
        PortBudget {
            edge_ports_10g: 64,
            core_ports_10g: 768,
        }
    }
}

/// A switch exceeding its budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PortViolation {
    /// The offending switch.
    pub switch: NodeId,
    /// Its role.
    pub role: SwitchRole,
    /// 10 G-port equivalents in use.
    pub used: f64,
    /// The budget it exceeded.
    pub budget: u32,
}

impl fmt::Display for PortViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "switch {} ({:?}) uses {:.0} 10G-port equivalents, budget {}",
            self.switch, self.role, self.used, self.budget
        )
    }
}

/// Checks every switch against `budget`; returns all violations (empty =
/// the topology is physically buildable from the Table 16 parts).
pub fn validate_port_budget(net: &Network, budget: PortBudget) -> Vec<PortViolation> {
    let mut violations = Vec::new();
    for node in net.nodes() {
        let NodeKind::Switch(role) = node.kind else {
            continue;
        };
        let used: f64 = net
            .neighbors(node.id)
            .iter()
            .map(|&(_, l)| net.link(l).bandwidth_gbps / 10.0)
            .sum();
        let cap = match role {
            SwitchRole::Core => budget.core_ports_10g,
            _ => budget.edge_ports_10g,
        };
        if used > f64::from(cap) + 1e-9 {
            violations.push(PortViolation {
                switch: node.id,
                role,
                used,
                budget: cap,
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{
        quartz_in_edge_and_core, quartz_mesh, table9_fat_tree, three_tier, two_tier,
    };

    #[test]
    fn every_evaluated_topology_fits_table16_parts() {
        let b = PortBudget::default();
        let nets: Vec<Network> = vec![
            quartz_mesh(33, 32, 10.0, 10.0).net,
            three_tier(8, 2, 4, 2, 10.0, 40.0).net,
            quartz_in_edge_and_core(4, 4, 4, 4).net,
            table9_fat_tree().net,
        ];
        for (i, net) in nets.iter().enumerate() {
            let v = validate_port_budget(net, b);
            assert!(v.is_empty(), "topology {i}: {:?}", v.first());
        }
    }

    #[test]
    fn oversized_mesh_is_caught() {
        // A hand-built 40-switch full mesh with 32 hosts each would need
        // 39 + 32 = 71 ports per 64-port device: physically impossible —
        // and the validator says so. (QuartzRing::new rejects this design
        // at a higher level; the validator catches raw graphs.)
        let mut net = Network::new();
        let switches: Vec<_> = (0..40)
            .map(|r| net.add_switch(SwitchRole::QuartzRing(0), Some(r)))
            .collect();
        for i in 0..40 {
            for j in (i + 1)..40 {
                net.connect(switches[i], switches[j], 10.0);
            }
            for _ in 0..32 {
                let h = net.add_host(Some(i));
                net.connect(h, switches[i], 10.0);
            }
        }
        let v = validate_port_budget(&net, PortBudget::default());
        assert_eq!(v.len(), 40, "every ring switch is over budget");
        assert!(v[0].used > 64.0);
    }

    #[test]
    fn forty_gig_links_count_as_four_ports() {
        let t = two_tier(2, 2, 1, 10.0, 40.0);
        // Root switch: 2 × 40G uplinks = 8 port-equivalents.
        let tight = PortBudget {
            edge_ports_10g: 7,
            core_ports_10g: 768,
        };
        let v = validate_port_budget(&t.net, tight);
        assert!(v.iter().any(|x| x.used == 8.0), "{v:?}");
    }

    #[test]
    fn core_budget_is_separate() {
        let t = three_tier(8, 2, 4, 2, 10.0, 40.0);
        // Squeeze the core budget below its real use; edges stay fine.
        let tight = PortBudget {
            edge_ports_10g: 64,
            core_ports_10g: 8,
        };
        let v = validate_port_budget(&t.net, tight);
        assert!(!v.is_empty());
        assert!(v.iter().all(|x| x.role == SwitchRole::Core));
    }
}
