//! Graph metrics behind Table 9: uncongested latency, hop counts, wiring
//! complexity, and path diversity.
//!
//! * **Latency without congestion** — switch hops on the longest
//!   host-to-host shortest path, priced per device: cut-through switches
//!   at 0.5 µs in the paper's Table 9 arithmetic, plus ~15 µs for every
//!   *server* hop in server-centric designs (BCube).
//! * **Wiring complexity** — the number of cross-rack cables.
//! * **Path diversity** — following Teixeira et al. \[39\], the number of
//!   edge-disjoint paths between representative endpoints, computed here
//!   exactly with unit-capacity max-flow (Edmonds–Karp on the directed
//!   expansion).

use crate::graph::{Network, NodeId};
use crate::route::RouteTable;
use std::collections::VecDeque;

/// Hop composition of a worst-case (diameter) host-to-host path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopCounts {
    /// Switches traversed.
    pub switch_hops: usize,
    /// Intermediate *servers* traversed (non-zero only for server-centric
    /// designs like BCube).
    pub server_hops: usize,
}

/// Worst-case hop composition across all host pairs (the network
/// diameter, measured host-to-host).
pub fn diameter_hops(net: &Network, table: &RouteTable) -> HopCounts {
    let hosts = net.hosts();
    let mut worst = HopCounts {
        switch_hops: 0,
        server_hops: 0,
    };
    let mut worst_len = 0;
    for &a in &hosts {
        for &b in &hosts {
            if a == b {
                continue;
            }
            if let Some(len) = table.path_len(a, b) {
                if len > worst_len {
                    worst_len = len;
                    worst = path_hops(net, table, a, b);
                }
            }
        }
    }
    worst
}

/// Hop composition of one shortest path between two hosts.
pub fn path_hops(net: &Network, table: &RouteTable, a: NodeId, b: NodeId) -> HopCounts {
    let path = table.a_path(a, b).unwrap_or_default();
    let mut hc = HopCounts {
        switch_hops: 0,
        server_hops: 0,
    };
    for &n in path.iter().skip(1).take(path.len().saturating_sub(2)) {
        if net.node(n).kind.is_switch() {
            hc.switch_hops += 1;
        } else {
            hc.server_hops += 1;
        }
    }
    hc
}

/// Mean host-to-host shortest-path length in links.
pub fn mean_path_len(net: &Network, table: &RouteTable) -> f64 {
    let hosts = net.hosts();
    let mut sum = 0usize;
    let mut count = 0usize;
    for &a in &hosts {
        for &b in &hosts {
            if a != b {
                if let Some(l) = table.path_len(a, b) {
                    sum += l;
                    count += 1;
                }
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    }
}

/// Uncongested end-to-end latency for a path with the given hop counts —
/// Table 9's first column.
///
/// `switch_latency_us` is per switch (0.5 µs for the paper's cut-through
/// devices), `server_fwd_us` per relaying server (~15 µs of OS stack).
pub fn latency_no_congestion_us(
    hops: HopCounts,
    switch_latency_us: f64,
    server_fwd_us: f64,
) -> f64 {
    hops.switch_hops as f64 * switch_latency_us + hops.server_hops as f64 * server_fwd_us
}

/// Edge-disjoint path count between `a` and `b` — the paper's path
/// diversity metric — via unit-capacity max-flow.
pub fn path_diversity(net: &Network, a: NodeId, b: NodeId) -> usize {
    // Directed expansion: each undirected link becomes two unit arcs.
    let n = net.node_count();
    // cap[(u,v)] tracked in a flat map: arc index = link*2 + dir.
    let m = net.link_count();
    let mut cap = vec![1i32; 2 * m];
    // adjacency: node -> (arc, to)
    let mut adj: Vec<Vec<(usize, NodeId)>> = vec![Vec::new(); n];
    for l in net.links() {
        adj[l.a.0 as usize].push((2 * l.id.0 as usize, l.b));
        adj[l.b.0 as usize].push((2 * l.id.0 as usize + 1, l.a));
    }

    let mut flow = 0usize;
    loop {
        // BFS for an augmenting path.
        let mut pred: Vec<Option<(usize, NodeId)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[a.0 as usize] = true;
        q.push_back(a);
        'bfs: while let Some(u) = q.pop_front() {
            for &(arc, v) in &adj[u.0 as usize] {
                if !seen[v.0 as usize] && cap[arc] > 0 {
                    seen[v.0 as usize] = true;
                    pred[v.0 as usize] = Some((arc, u));
                    if v == b {
                        break 'bfs;
                    }
                    q.push_back(v);
                }
            }
        }
        if !seen[b.0 as usize] {
            return flow;
        }
        // Augment by 1 along the path.
        let mut cur = b;
        while cur != a {
            let (arc, prev) = pred[cur.0 as usize].unwrap();
            cap[arc] -= 1;
            cap[arc ^ 1] += 1; // reverse arc shares the link's pair slot
            cur = prev;
        }
        flow += 1;
    }
}

/// Path diversity between the ToR switches of two hosts (Table 9 measures
/// switch-level diversity, not host-level, since hosts have one NIC).
pub fn tor_path_diversity(net: &Network, host_a: NodeId, host_b: NodeId) -> usize {
    match (net.host_tor(host_a), net.host_tor(host_b)) {
        (Some(sa), Some(sb)) if sa != sb => path_diversity(net, sa, sb),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{
        fat_tree, prototype_quartz, prototype_two_tier, quartz_mesh, three_tier, two_tier,
    };

    #[test]
    fn mesh_diameter_is_two_switches() {
        let q = quartz_mesh(6, 2, 10.0, 10.0);
        let t = RouteTable::all_shortest_paths(&q.net);
        let h = diameter_hops(&q.net, &t);
        assert_eq!(h.switch_hops, 2);
        assert_eq!(h.server_hops, 0);
        // Table 9: 1.0 µs at 0.5 µs per switch.
        assert_eq!(latency_no_congestion_us(h, 0.5, 15.0), 1.0);
    }

    #[test]
    fn two_tier_diameter_is_three_switches() {
        let t2 = two_tier(4, 2, 1, 10.0, 40.0);
        let t = RouteTable::all_shortest_paths(&t2.net);
        let h = diameter_hops(&t2.net, &t);
        assert_eq!(h.switch_hops, 3);
        assert_eq!(latency_no_congestion_us(h, 0.5, 15.0), 1.5);
    }

    #[test]
    fn three_tier_diameter_is_five_switches() {
        let t3 = three_tier(4, 2, 2, 2, 10.0, 40.0);
        let t = RouteTable::all_shortest_paths(&t3.net);
        let h = diameter_hops(&t3.net, &t);
        assert_eq!(h.switch_hops, 5);
    }

    #[test]
    fn bcube_pays_server_hops() {
        let b = crate::builders::bcube(4, 1, 10.0);
        let t = RouteTable::all_shortest_paths(&b.net);
        let h = diameter_hops(&b.net, &t);
        assert_eq!(h.switch_hops, 2);
        assert_eq!(h.server_hops, 1);
        // Table 9: 16 µs = 2 × 0.5 + 1 × 15.
        assert_eq!(latency_no_congestion_us(h, 0.5, 15.0), 16.0);
    }

    #[test]
    fn mesh_path_diversity_is_m_minus_one() {
        // Table 9: mesh diversity 32 for 33 switches (direct + 31
        // detours). Verify the pattern at small scale: m−1.
        for m in [4usize, 6, 8] {
            let q = quartz_mesh(m, 1, 10.0, 10.0);
            let d = path_diversity(&q.net, q.switches[0], q.switches[1]);
            assert_eq!(d, m - 1, "m={m}");
        }
    }

    #[test]
    fn tree_path_diversity_is_low() {
        let p = prototype_two_tier();
        // ToR to ToR through one root: a single edge-disjoint path.
        let d = path_diversity(&p.net, p.switches[1], p.switches[2]);
        assert_eq!(d, 1);
    }

    #[test]
    fn fat_tree_diversity_matches_arity() {
        // Between edge switches in different pods, a k-ary fat-tree has
        // k/2 × ... bounded by the edge switch's k/2 uplinks.
        let f = fat_tree(4, 10.0);
        let d = path_diversity(&f.net, f.edges[0], f.edges[7]);
        assert_eq!(d, 2); // k/2 uplinks bound the flow
    }

    #[test]
    fn tor_path_diversity_resolves_hosts() {
        let q = prototype_quartz();
        let d = tor_path_diversity(&q.net, q.hosts[0], q.hosts[2]);
        assert_eq!(d, 3); // K4: direct + 2 detours
                          // Same-rack hosts: zero by definition.
        assert_eq!(tor_path_diversity(&q.net, q.hosts[0], q.hosts[1]), 0);
    }

    #[test]
    fn mean_path_len_reasonable() {
        let q = quartz_mesh(4, 2, 10.0, 10.0);
        let t = RouteTable::all_shortest_paths(&q.net);
        let mpl = mean_path_len(&q.net, &t);
        // Same-switch pairs: 2 links; cross-switch: 3 links.
        assert!(mpl > 2.0 && mpl < 3.0, "{mpl}");
    }
}
