//! Spatial-domain partitioning for the sharded simulation engine.
//!
//! A partition splits a network's switches into `k` *spatial domains* so
//! that a single simulation can advance each domain on its own worker
//! under conservative lookahead (DESIGN.md §13). The partitioner only
//! chooses *where* the domain boundaries fall; the engine derives its
//! lookahead window from the links that end up crossing them, so any
//! assignment is correct — a good one merely crosses few, slow links.
//!
//! Three strategies, picked automatically:
//!
//! 1. **Ring arcs** — a pure Quartz mesh (every switch carries
//!    [`SwitchRole::QuartzRing`]) splits into `k` contiguous arcs of the
//!    ring ordering.
//! 2. **Pod grouping** — a composite with an edge tier (ToR/aggregation
//!    switches) under a ring or core tier groups each pod (a connected
//!    component of the edge-tier subgraph) whole, deals pods to the
//!    least-loaded domain, and splits the upper tier into contiguous
//!    arcs.
//! 3. **BFS growth** — any other topology (Jellyfish, …) grows `k`
//!    balanced regions from evenly spread seed switches by round-robin
//!    breadth-first claiming.
//!
//! Hosts always join the domain of their first switch neighbor, so a
//! host's access link never crosses a domain boundary — the engine's
//! lookahead bound only has to consider switch-to-switch links.
//!
//! Everything here is deterministic: same network and `k` ⇒ same
//! assignment, independent of thread count or iteration timing.

use crate::graph::{Network, NodeId, NodeKind, SwitchRole};
use std::collections::VecDeque;

/// A spatial-domain assignment over one network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Domain index per node (indexed by `NodeId.0`).
    domain_of: Vec<u32>,
    /// Number of domains (`max(domain_of) + 1`).
    domains: u32,
}

impl Partition {
    /// The domain of `node`.
    #[inline]
    pub fn domain(&self, node: NodeId) -> u32 {
        self.domain_of[node.0 as usize]
    }

    /// Domain index per node, indexed by `NodeId.0`.
    pub fn domain_of(&self) -> &[u32] {
        &self.domain_of
    }

    /// Number of domains.
    pub fn domains(&self) -> usize {
        self.domains as usize
    }

    /// Directed switch-to-switch link slots that cross a domain
    /// boundary, as `(slot, from, to)` with the simulator's slot layout
    /// (`2·link` = a→b, `2·link + 1` = b→a).
    pub fn cross_slots<'a>(
        &'a self,
        net: &'a Network,
    ) -> impl Iterator<Item = (u32, NodeId, NodeId)> + 'a {
        net.links().flat_map(move |l| {
            let (da, db) = (self.domain(l.a), self.domain(l.b));
            let ab = (da != db).then_some((2 * l.id.0, l.a, l.b));
            let ba = (da != db).then_some((2 * l.id.0 + 1, l.b, l.a));
            ab.into_iter().chain(ba)
        })
    }

    /// Number of undirected links crossing a domain boundary.
    pub fn cross_links(&self, net: &Network) -> usize {
        net.links()
            .filter(|l| self.domain(l.a) != self.domain(l.b))
            .count()
    }

    /// Switch count per domain (hosts excluded).
    pub fn switch_counts(&self, net: &Network) -> Vec<usize> {
        let mut counts = vec![0usize; self.domains()];
        for n in net.nodes() {
            if n.kind.is_switch() {
                counts[self.domain(n.id) as usize] += 1;
            }
        }
        counts
    }
}

/// Partitions `net` into (at most) `k` spatial domains. `k` is clamped
/// to `1..=switch count`; with `k == 1` every node lands in domain 0.
///
/// # Panics
/// Panics if the network has no switches, or if some host has no switch
/// neighbor (relay-host fabrics are not partitionable — their host
/// links would cross domains).
pub fn spatial_domains(net: &Network, k: usize) -> Partition {
    let switches = net.switches();
    assert!(
        !switches.is_empty(),
        "cannot partition a switchless network"
    );
    let k = k.clamp(1, switches.len()) as u32;
    let mut domain_of = vec![u32::MAX; net.node_count()];
    if k == 1 {
        domain_of.fill(0);
        return Partition {
            domain_of,
            domains: 1,
        };
    }

    let all_ring = switches.iter().all(|&s| {
        matches!(
            net.node(s).kind,
            NodeKind::Switch(SwitchRole::QuartzRing(_))
        )
    });
    if all_ring {
        ring_arcs(&switches, k, &mut domain_of);
    } else if !pod_grouping(net, &switches, k, &mut domain_of) {
        bfs_growth(net, &switches, k, &mut domain_of);
    }

    assign_hosts(net, &mut domain_of);
    Partition {
        domain_of,
        domains: k,
    }
}

/// Strategy 1: contiguous arcs of the ring ordering (switch-id order,
/// which the builders lay out around the ring).
fn ring_arcs(switches: &[NodeId], k: u32, domain_of: &mut [u32]) {
    let n = switches.len() as u64;
    for (i, &s) in switches.iter().enumerate() {
        // Even split: arc d covers indices [d·n/k, (d+1)·n/k).
        debug_assert!((i as u64) < n, "enumerate index bounded by len");
        domain_of[s.0 as usize] = ((i as u64 * u64::from(k)) / n) as u32;
    }
}

/// Strategy 2: pods whole, upper tier in arcs. Returns `false` (leaving
/// `domain_of` untouched) when the topology has no edge/upper split.
fn pod_grouping(net: &Network, switches: &[NodeId], k: u32, domain_of: &mut [u32]) -> bool {
    let is_edge = |s: NodeId| {
        matches!(
            net.node(s).kind,
            NodeKind::Switch(SwitchRole::TopOfRack | SwitchRole::Aggregation)
        )
    };
    let edges: Vec<NodeId> = switches.iter().copied().filter(|&s| is_edge(s)).collect();
    let uppers: Vec<NodeId> = switches.iter().copied().filter(|&s| !is_edge(s)).collect();
    if edges.is_empty() || uppers.is_empty() {
        return false;
    }

    // Pods = connected components of the edge-tier subgraph, discovered
    // in ascending switch-id order (deterministic).
    let mut pod_of = vec![usize::MAX; net.node_count()];
    let mut pods: Vec<Vec<NodeId>> = Vec::new();
    for &start in &edges {
        if pod_of[start.0 as usize] != usize::MAX {
            continue;
        }
        let pod = pods.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::new();
        pod_of[start.0 as usize] = pod;
        queue.push_back(start);
        while let Some(s) = queue.pop_front() {
            members.push(s);
            for &(nb, _) in net.neighbors(s) {
                if net.node(nb).kind.is_switch()
                    && is_edge(nb)
                    && pod_of[nb.0 as usize] == usize::MAX
                {
                    pod_of[nb.0 as usize] = pod;
                    queue.push_back(nb);
                }
            }
        }
        pods.push(members);
    }

    // Deal pods (largest first among equals by discovery order) onto the
    // least-loaded domain; ties break toward the lowest domain index.
    let mut load = vec![0usize; k as usize];
    for members in &pods {
        let d = (0..k as usize).min_by_key(|&d| (load[d], d)).unwrap();
        debug_assert!(d < k as usize, "min_by_key over 0..k");
        load[d] += members.len();
        for &s in members {
            domain_of[s.0 as usize] = d as u32;
        }
    }
    // Upper tier (ring/core switches): contiguous arcs, like strategy 1.
    ring_arcs(&uppers, k, domain_of);
    true
}

/// Strategy 3: multi-source BFS from `k` evenly spread seed switches;
/// domains take turns (least-claimed first) claiming one switch from
/// their frontier until all switches are assigned.
fn bfs_growth(net: &Network, switches: &[NodeId], k: u32, domain_of: &mut [u32]) {
    let n = switches.len();
    let mut frontiers: Vec<VecDeque<NodeId>> = Vec::with_capacity(k as usize);
    let mut sizes = vec![0usize; k as usize];
    for d in 0..k as usize {
        let seed = switches[d * n / k as usize];
        let mut f = VecDeque::new();
        f.push_back(seed);
        frontiers.push(f);
    }
    let mut claimed = 0usize;
    while claimed < n {
        // Smallest domain with a non-empty frontier goes next; if every
        // frontier is empty (disconnected remainder), the smallest
        // domain adopts the lowest unassigned switch.
        let d = match (0..k as usize)
            .filter(|&d| !frontiers[d].is_empty())
            .min_by_key(|&d| (sizes[d], d))
        {
            Some(d) => d,
            None => {
                let d = (0..k as usize).min_by_key(|&d| (sizes[d], d)).unwrap();
                let orphan = switches
                    .iter()
                    .copied()
                    .find(|&s| domain_of[s.0 as usize] == u32::MAX)
                    .expect("claimed < n implies an unassigned switch");
                frontiers[d].push_back(orphan);
                d
            }
        };
        let Some(s) = frontiers[d].pop_front() else {
            continue;
        };
        if domain_of[s.0 as usize] != u32::MAX {
            continue;
        }
        debug_assert!(d < k as usize, "domain index chosen from 0..k");
        domain_of[s.0 as usize] = d as u32;
        sizes[d] += 1;
        claimed += 1;
        for &(nb, _) in net.neighbors(s) {
            if net.node(nb).kind.is_switch() && domain_of[nb.0 as usize] == u32::MAX {
                frontiers[d].push_back(nb);
            }
        }
    }
}

/// Hosts join their first switch neighbor's domain.
fn assign_hosts(net: &Network, domain_of: &mut [u32]) {
    for node in net.nodes() {
        if !node.kind.is_host() {
            continue;
        }
        let tor = net
            .neighbors(node.id)
            .iter()
            .map(|&(nb, _)| nb)
            .find(|&nb| net.node(nb).kind.is_switch())
            .expect("every host needs a switch neighbor to partition");
        domain_of[node.id.0 as usize] = domain_of[tor.0 as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{jellyfish, quartz_in_core, quartz_mesh, three_tier};

    fn assert_covering(net: &Network, p: &Partition) {
        assert_eq!(p.domain_of().len(), net.node_count());
        for n in net.nodes() {
            assert!(
                p.domain(n.id) < p.domains() as u32,
                "{} unassigned or out of range",
                n.id
            );
        }
    }

    /// No host access link may cross a boundary — the engine's lookahead
    /// derivation depends on it.
    fn assert_hosts_with_tor(net: &Network, p: &Partition) {
        for l in net.links() {
            let host_end = net.node(l.a).kind.is_host() || net.node(l.b).kind.is_host();
            if host_end {
                assert_eq!(p.domain(l.a), p.domain(l.b), "host link {} crosses", l.id);
            }
        }
    }

    #[test]
    fn mesh_splits_into_contiguous_arcs() {
        let q = quartz_mesh(16, 4, 10.0, 10.0);
        let p = spatial_domains(&q.net, 4);
        assert_eq!(p.domains(), 4);
        assert_covering(&q.net, &p);
        assert_hosts_with_tor(&q.net, &p);
        // 16 switches over 4 domains: 4 each, arc d = switches 4d..4d+4.
        for (i, &s) in q.switches.iter().enumerate() {
            assert_eq!(p.domain(s), (i / 4) as u32);
        }
        assert_eq!(p.switch_counts(&q.net), vec![4, 4, 4, 4]);
    }

    #[test]
    fn composite_keeps_pods_whole() {
        let c = quartz_in_core(4, 4, 4, 8);
        let p = spatial_domains(&c.net, 4);
        assert_covering(&c.net, &p);
        assert_hosts_with_tor(&c.net, &p);
        // Every ToR in a pod shares its pod-mates' domain (pods are the
        // edge-tier components; 4 pods onto 4 domains = one each).
        for pod in 0..4 {
            let doms: Vec<u32> = (0..4).map(|t| p.domain(c.edges[pod * 4 + t])).collect();
            assert!(doms.windows(2).all(|w| w[0] == w[1]), "pod {pod}: {doms:?}");
        }
        let counts = p.switch_counts(&c.net);
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 2, "unbalanced: {counts:?}");
    }

    #[test]
    fn three_tier_pods_stay_whole_too() {
        let t = three_tier(4, 4, 2, 2, 10.0, 40.0);
        let p = spatial_domains(&t.net, 2);
        assert_covering(&t.net, &p);
        assert_hosts_with_tor(&t.net, &p);
    }

    #[test]
    fn jellyfish_falls_back_to_bfs_growth() {
        let j = jellyfish(24, 4, 2, 10.0, 10.0, 7);
        let p = spatial_domains(&j.net, 4);
        assert_covering(&j.net, &p);
        assert_hosts_with_tor(&j.net, &p);
        let counts = p.switch_counts(&j.net);
        assert_eq!(counts.iter().sum::<usize>(), 24);
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "BFS growth must balance: {counts:?}");
    }

    #[test]
    fn k_clamps_to_switch_count_and_one() {
        let q = quartz_mesh(4, 1, 10.0, 10.0);
        assert_eq!(spatial_domains(&q.net, 99).domains(), 4);
        let p1 = spatial_domains(&q.net, 1);
        assert_eq!(p1.domains(), 1);
        assert!(p1.domain_of().iter().all(|&d| d == 0));
        assert_eq!(p1.cross_links(&q.net), 0);
    }

    #[test]
    fn partitions_are_deterministic() {
        let c = quartz_in_core(4, 4, 4, 8);
        let a = spatial_domains(&c.net, 4);
        let b = spatial_domains(&c.net, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn cross_slots_match_cross_links() {
        let q = quartz_mesh(8, 2, 10.0, 10.0);
        let p = spatial_domains(&q.net, 2);
        let slots: Vec<_> = p.cross_slots(&q.net).collect();
        assert_eq!(slots.len(), 2 * p.cross_links(&q.net));
        for (slot, from, to) in slots {
            assert_ne!(p.domain(from), p.domain(to));
            let l = q.net.link(crate::graph::LinkId(slot / 2));
            assert!(
                (l.a == from && l.b == to) || (l.a == to && l.b == from),
                "slot endpoints must match the link"
            );
        }
    }
}
