//! SPAIN-style multipath over commodity Ethernet (Mudigonda et al.,
//! NSDI 2010 — the paper's \[35\]), as used by the §6 prototype.
//!
//! "To precisely control the traffic paths in our experiments, we use
//! the technique introduced in SPAIN to expose alternative network paths
//! to the application. We create 4 virtual interfaces on each server,
//! where each virtual interface sends traffic using a specific VLAN and
//! the spanning trees for the VLANs are rooted at different switches.
//! Therefore, an application can select a direct two-hop path or a
//! specific indirect three-hop path by sending data on the corresponding
//! virtual interface."
//!
//! [`SpainFabric`] builds one spanning-tree routing table per VLAN (each
//! rooted at a different switch) and lets callers pick per flow — the
//! mechanism that made VLB expressible on 2010-era L2 hardware.

use crate::graph::{Network, NodeId};
use crate::route::RouteTable;

/// A set of per-VLAN spanning-tree routing tables.
#[derive(Clone, Debug)]
pub struct SpainFabric {
    roots: Vec<NodeId>,
    tables: Vec<RouteTable>,
}

impl SpainFabric {
    /// Builds one VLAN per entry of `roots`, each a spanning tree rooted
    /// at that switch.
    ///
    /// # Panics
    /// Panics if `roots` is empty or contains a non-switch.
    pub fn new(net: &Network, roots: &[NodeId]) -> Self {
        assert!(!roots.is_empty(), "SPAIN needs at least one VLAN");
        for &r in roots {
            assert!(
                net.node(r).kind.is_switch(),
                "VLAN trees are rooted at switches, got {r}"
            );
        }
        let tables = roots
            .iter()
            .map(|&r| RouteTable::spanning_tree(net, r))
            .collect();
        SpainFabric {
            roots: roots.to_vec(),
            tables,
        }
    }

    /// One VLAN per switch — the prototype's "4 virtual interfaces on
    /// each server" for its four switches.
    pub fn per_switch(net: &Network) -> Self {
        let switches = net.switches();
        Self::new(net, &switches)
    }

    /// Number of VLANs.
    pub fn vlans(&self) -> usize {
        self.tables.len()
    }

    /// The root switch of VLAN `v`.
    pub fn root(&self, v: usize) -> NodeId {
        self.roots[v]
    }

    /// The routing table of VLAN `v`.
    pub fn table(&self, v: usize) -> &RouteTable {
        &self.tables[v]
    }

    /// Path length (links) between two hosts on VLAN `v`.
    pub fn path_len(&self, v: usize, a: NodeId, b: NodeId) -> Option<usize> {
        self.tables[v].path_len(a, b)
    }

    /// The VLAN giving the shortest path for `a → b` — what a SPAIN
    /// driver picks for latency-sensitive flows.
    pub fn best_vlan(&self, a: NodeId, b: NodeId) -> Option<usize> {
        (0..self.vlans())
            .filter_map(|v| self.path_len(v, a, b).map(|l| (v, l)))
            .min_by_key(|&(_, l)| l)
            .map(|(v, _)| v)
    }

    /// All distinct path lengths available between `a` and `b` — the
    /// "direct two-hop path or a specific indirect three-hop path"
    /// choice the prototype exposes.
    pub fn path_choices(&self, a: NodeId, b: NodeId) -> Vec<(usize, usize)> {
        (0..self.vlans())
            .filter_map(|v| self.path_len(v, a, b).map(|l| (v, l)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{prototype_quartz, three_tier};

    #[test]
    fn prototype_exposes_direct_and_indirect_paths() {
        // §6: on the 4-switch mesh, the VLAN rooted at the destination's
        // own switch uses the direct mesh link (host-sw-sw-host = 3
        // links), while a VLAN rooted elsewhere detours through its root
        // (4 links).
        let p = prototype_quartz();
        let spain = SpainFabric::per_switch(&p.net);
        assert_eq!(spain.vlans(), 4);
        let (a, b) = (p.hosts[0], p.hosts[2]); // S1-host → S2-host
        let choices = spain.path_choices(a, b);
        assert_eq!(choices.len(), 4);
        let lens: Vec<usize> = choices.iter().map(|&(_, l)| l).collect();
        assert!(lens.contains(&3), "a direct 2-switch path exists: {lens:?}");
        assert!(
            lens.contains(&4),
            "an indirect 3-switch path exists: {lens:?}"
        );
    }

    #[test]
    fn best_vlan_picks_the_direct_path() {
        let p = prototype_quartz();
        let spain = SpainFabric::per_switch(&p.net);
        let (a, b) = (p.hosts[0], p.hosts[2]);
        let v = spain.best_vlan(a, b).unwrap();
        assert_eq!(spain.path_len(v, a, b), Some(3));
    }

    #[test]
    fn vlans_rooted_at_different_switches_really_differ() {
        let p = prototype_quartz();
        let spain = SpainFabric::per_switch(&p.net);
        // S2 ↔ S3 traffic: on the VLAN rooted at S1, the spanning tree
        // forces the S1 detour.
        let detour_vlan = 0; // rooted at switches[0] = S1
        let direct_vlan = 1; // rooted at switches[1] = S2
        let (a, b) = (p.hosts[2], p.hosts[4]);
        assert_eq!(spain.root(detour_vlan), p.switches[0]);
        assert!(
            spain.path_len(detour_vlan, a, b).unwrap() > spain.path_len(direct_vlan, a, b).unwrap()
        );
    }

    #[test]
    fn every_vlan_reaches_every_host() {
        let t = three_tier(2, 2, 2, 2, 10.0, 40.0);
        let spain = SpainFabric::new(&t.net, &t.cores);
        for v in 0..spain.vlans() {
            for &a in &t.hosts {
                for &b in &t.hosts {
                    if a != b {
                        assert!(spain.path_len(v, a, b).is_some(), "vlan {v}: {a}->{b}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "rooted at switches")]
    fn host_roots_rejected() {
        let p = prototype_quartz();
        let _ = SpainFabric::new(&p.net, &[p.hosts[0]]);
    }
}
