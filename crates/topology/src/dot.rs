//! Graphviz DOT export for topologies — `dot -Tsvg` renders any
//! [`Network`] for papers, docs, or debugging.

use crate::graph::{Network, NodeKind, SwitchRole};
use std::fmt::Write;

/// Renders the network in Graphviz DOT. Hosts are small circles,
/// switches boxes colored by role; edge labels carry bandwidth; rack
/// membership becomes clusters.
pub fn to_dot(net: &Network, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", title.replace('"', "'"));
    let _ = writeln!(out, "  layout=neato; overlap=false; splines=true;");
    let _ = writeln!(out, "  label=\"{}\";", title.replace('"', "'"));

    for node in net.nodes() {
        let (shape, color, label) = match node.kind {
            NodeKind::Host => ("circle", "gray80", format!("h{}", node.id.0)),
            NodeKind::Switch(SwitchRole::TopOfRack) => {
                ("box", "lightblue", format!("tor{}", node.id.0))
            }
            NodeKind::Switch(SwitchRole::Aggregation) => {
                ("box", "khaki", format!("agg{}", node.id.0))
            }
            NodeKind::Switch(SwitchRole::Core) => ("box", "salmon", format!("core{}", node.id.0)),
            NodeKind::Switch(SwitchRole::QuartzRing(r)) => {
                ("box", "palegreen", format!("q{}r{r}", node.id.0))
            }
        };
        let _ = writeln!(
            out,
            "  n{} [shape={shape}, style=filled, fillcolor={color}, label=\"{label}\"];",
            node.id.0
        );
    }
    for link in net.links() {
        let _ = writeln!(
            out,
            "  n{} -- n{} [label=\"{}G\"];",
            link.a.0, link.b.0, link.bandwidth_gbps
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{prototype_quartz, three_tier};

    #[test]
    fn dot_contains_every_node_and_link() {
        let p = prototype_quartz();
        let dot = to_dot(&p.net, "quartz prototype");
        for node in p.net.nodes() {
            assert!(dot.contains(&format!("n{} [", node.id.0)));
        }
        assert_eq!(dot.matches(" -- ").count(), p.net.link_count());
        assert!(dot.starts_with("graph"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn roles_are_distinguished() {
        let t = three_tier(2, 1, 2, 2, 10.0, 40.0);
        let dot = to_dot(&t.net, "three tier");
        assert!(dot.contains("salmon")); // cores
        assert!(dot.contains("khaki")); // aggs
        assert!(dot.contains("lightblue")); // tors
        assert!(dot.contains("gray80")); // hosts
    }

    #[test]
    fn titles_with_quotes_are_sanitized() {
        let p = prototype_quartz();
        let dot = to_dot(&p.net, "a \"quoted\" title");
        assert!(!dot.contains("\"a \"quoted\""));
    }
}
