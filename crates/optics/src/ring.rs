//! Amplifier/attenuator placement planning for a complete Quartz ring.
//!
//! A Quartz ring has `M` sites (one per switch), each with an add/drop
//! mux/demux. A lightpath from site `s` to site `t` traverses:
//!
//! 1. the **add** stage of `s`'s mux (one traversal),
//! 2. each intermediate site's OADM in **express** mode, and
//! 3. the **drop** stage of `t`'s demux (one traversal).
//!
//! With integrated OADMs (one device traversal per site passed — the
//! reading consistent with all of §3.3's arithmetic: the first hop crosses
//! two DWDMs, each further hop one more, and an amplifier after every three
//! traversals means one amplifier for every two switches), the planner
//! places amplifiers uniformly so that *no* pairwise lightpath, up to the
//! ⌊M/2⌋-hop worst case, violates its power budget, and sizes a fixed
//! receiver attenuator so that the *shortest* (strongest) path does not
//! overload the receiver.
//!
//! For the paper's 24-node example this yields 12 amplifiers — "one
//! amplifier for every two switches" — which `quartz-cost` prices at about
//! +3 % of ring cost.

use crate::budget::{BudgetError, Lightpath, LightpathElement, PowerBudget};
use crate::components::{AmplifierSpec, AttenuatorSpec, MuxDemuxSpec, TransceiverSpec};
use crate::units::Db;
use std::fmt;

/// How an express (pass-through) site loads the signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpressModel {
    /// The site's OADM is a single integrated device: one insertion-loss
    /// traversal per expressed site. This matches the paper's §3.3
    /// arithmetic and is the default.
    IntegratedOadm,
    /// The site uses a discrete demux + mux pair: two traversals per
    /// expressed site. Kept for ablation studies of the optical budget.
    DiscreteMuxDemux,
}

impl ExpressModel {
    fn traversals(self) -> u32 {
        match self {
            ExpressModel::IntegratedOadm => 1,
            ExpressModel::DiscreteMuxDemux => 2,
        }
    }
}

/// A site of the ring (informational view used in reports).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingSite {
    /// Site index, `0..M`.
    pub index: usize,
    /// Whether an inline amplifier sits on the fiber segment leaving this
    /// site clockwise.
    pub amplifier_after: bool,
}

/// Errors from planning or validating a ring's optical layer.
#[derive(Clone, Debug, PartialEq)]
pub enum RingPlanError {
    /// Rings need at least 2 sites.
    TooSmall(usize),
    /// The transceiver/mux combination cannot even reach the adjacent
    /// site (budget < 2 traversals).
    AdjacentHopInfeasible,
    /// Validation found a pairwise path violating its budget even with the
    /// planned amplifiers.
    PathInfeasible {
        /// Source site.
        from: usize,
        /// Destination site.
        to: usize,
        /// Underlying budget violation.
        error: BudgetError,
    },
}

impl fmt::Display for RingPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingPlanError::TooSmall(m) => write!(f, "a ring needs ≥ 2 sites, got {m}"),
            RingPlanError::AdjacentHopInfeasible => {
                write!(f, "power budget cannot cover even one optical hop")
            }
            RingPlanError::PathInfeasible { from, to, error } => {
                write!(f, "lightpath {from}→{to} infeasible: {error}")
            }
        }
    }
}

impl std::error::Error for RingPlanError {}

/// A planned optical layer for an `M`-site Quartz ring: uniform amplifier
/// placement plus a per-receiver attenuator pad.
#[derive(Clone, Debug)]
pub struct RingOpticalPlan {
    sites: usize,
    transceiver: TransceiverSpec,
    mux: MuxDemuxSpec,
    amplifier: AmplifierSpec,
    express: ExpressModel,
    /// Amplifier on the clockwise-egress fiber of sites whose index is a
    /// multiple of this spacing. `usize::MAX` means no amplifiers.
    amp_spacing: usize,
    /// Fixed attenuation pad in front of every receiver.
    receiver_pad: AttenuatorSpec,
    budget: PowerBudget,
}

impl RingOpticalPlan {
    /// Plans amplifier spacing and receiver pads for an `M`-site ring with
    /// the given parts, then validates every pairwise lightpath.
    pub fn plan(
        sites: usize,
        transceiver: TransceiverSpec,
        mux: MuxDemuxSpec,
        amplifier: AmplifierSpec,
        express: ExpressModel,
        budget: PowerBudget,
    ) -> Result<Self, RingPlanError> {
        if sites < 2 {
            return Err(RingPlanError::TooSmall(sites));
        }
        let max_traversals = budget.max_mux_traversals(&transceiver, &mux);
        if max_traversals < 2 {
            return Err(RingPlanError::AdjacentHopInfeasible);
        }

        // Worst-case path length (hops) in a bidirectional ring.
        let worst_hops = sites / 2;
        // Traversals on an h-hop path: 2 at the endpoints (add + drop) and
        // `express.traversals()` per intermediate site.
        let worst_traversals = 2 + express.traversals() * (worst_hops.max(1) as u32 - 1);

        // Choose amplifier spacing: between two amplifier crossings the
        // signal must lose at most `max_traversals` device traversals.
        // A segment of `s` hops contains at most `s * per_hop` traversals
        // (counting the endpoint stages conservatively as express stages,
        // since an add stage plus the first expressed site is two
        // traversals in the integrated model).
        let per_hop = express.traversals() as usize;
        let amp_spacing = if worst_traversals <= max_traversals {
            usize::MAX // short ring: no amplifiers needed at all
        } else {
            // Largest spacing with (spacing+1) * per_hop ≤ max_traversals;
            // the +1 absorbs the add/drop endpoint stage adjacent to a
            // segment boundary.
            let s = (max_traversals as usize / per_hop).saturating_sub(1);
            s.max(1)
        };

        // Receiver pad: size it so the strongest possible arrival (the
        // 1-hop neighbor path, possibly amplified right before the drop)
        // sits at or below the overload point.
        let mut plan = RingOpticalPlan {
            sites,
            transceiver,
            mux,
            amplifier,
            express,
            amp_spacing,
            receiver_pad: AttenuatorSpec::new(0.0),
            budget,
        };
        let strongest = plan.strongest_arrival();
        let overload = transceiver.rx_overload;
        if strongest > overload {
            let pad = (strongest - overload).value().ceil().min(30.0);
            plan.receiver_pad = AttenuatorSpec::new(pad.max(0.0));
        }

        plan.validate()?;
        Ok(plan)
    }

    /// Plans a ring from the paper's §3.3 parts: 10 G DWDM transceivers,
    /// 80-channel DWDMs, 18 dB EDFAs, integrated OADMs, no extra margin.
    pub fn paper_plan(sites: usize) -> Result<Self, RingPlanError> {
        use crate::components::{PAPER_AMPLIFIER, PAPER_DWDM_80CH, PAPER_DWDM_TRANSCEIVER};
        Self::plan(
            sites,
            PAPER_DWDM_TRANSCEIVER,
            PAPER_DWDM_80CH,
            PAPER_AMPLIFIER,
            ExpressModel::IntegratedOadm,
            PowerBudget::default(),
        )
    }

    /// Number of sites on the ring.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Whether an amplifier sits on the clockwise-egress fiber of `site`.
    pub fn amplifier_after(&self, site: usize) -> bool {
        self.amp_spacing != usize::MAX && site.is_multiple_of(self.amp_spacing)
    }

    /// Total number of amplifiers on the ring.
    pub fn amplifier_count(&self) -> usize {
        (0..self.sites).filter(|&s| self.amplifier_after(s)).count()
    }

    /// The receiver attenuator pad the plan installs at every drop port.
    pub fn receiver_pad(&self) -> AttenuatorSpec {
        self.receiver_pad
    }

    /// Site view, for reports.
    pub fn site(&self, index: usize) -> RingSite {
        RingSite {
            index,
            amplifier_after: self.amplifier_after(index),
        }
    }

    /// Hop distance from `from` to `to` walking clockwise.
    fn cw_hops(&self, from: usize, to: usize) -> usize {
        (to + self.sites - from) % self.sites
    }

    /// Builds the element sequence for the clockwise lightpath `from → to`.
    ///
    /// # Panics
    /// Panics if `from == to` or either index is out of range.
    pub fn lightpath_cw(&self, from: usize, to: usize) -> Lightpath {
        assert!(from < self.sites && to < self.sites && from != to);
        let hops = self.cw_hops(from, to);
        let mut p = Lightpath::new(self.transceiver);
        // Add stage at the source.
        p = p.with(LightpathElement::MuxDemux(self.mux));
        let mut site = from;
        for step in 0..hops {
            if self.amplifier_after(site) {
                p = p.with(LightpathElement::Amplifier(self.amplifier));
            }
            site = (site + 1) % self.sites;
            let last = step == hops - 1;
            if last {
                // Drop stage at the destination.
                p = p.with(LightpathElement::MuxDemux(self.mux));
            } else {
                // Express traversal(s) of the intermediate site's OADM.
                for _ in 0..self.express.traversals() {
                    p = p.with(LightpathElement::MuxDemux(self.mux));
                }
            }
        }
        p = p.with(LightpathElement::Attenuator(self.receiver_pad));
        p
    }

    /// The shortest-direction lightpath `from → to` (ties go clockwise).
    pub fn lightpath(&self, from: usize, to: usize) -> Lightpath {
        let cw = self.cw_hops(from, to);
        if cw <= self.sites - cw {
            self.lightpath_cw(from, to)
        } else {
            // Counter-clockwise s→t is the clockwise walk on the mirrored
            // ring; amplifier placement is symmetric enough for planning
            // purposes (uniform spacing), so reuse the clockwise builder on
            // swapped indices, which has the same hop count and element
            // pattern.
            self.lightpath_cw(to, from)
        }
    }

    /// The strongest arrival power across all pairwise shortest paths
    /// (before the receiver pad is applied).
    fn strongest_arrival(&self) -> crate::units::Dbm {
        // Strongest case: 1-hop path with an amplifier on its segment,
        // amplifying right after the add stage (gain-compressed at the
        // amplifier's per-channel ceiling), then one drop traversal.
        if self.amp_spacing != usize::MAX {
            let after_add = self.transceiver.tx_power + self.mux.loss();
            let after_amp =
                (after_add + self.amplifier.gain).min(self.amplifier.per_channel_ceiling());
            after_amp + self.mux.loss()
        } else {
            self.transceiver.tx_power + self.mux.loss() + self.mux.loss()
        }
    }

    /// Validates every pairwise shortest-direction lightpath against the
    /// power budget.
    pub fn validate(&self) -> Result<(), RingPlanError> {
        for from in 0..self.sites {
            for to in 0..self.sites {
                if from == to {
                    continue;
                }
                let path = self.lightpath(from, to);
                if let Err(error) = self.budget.evaluate(&path) {
                    return Err(RingPlanError::PathInfeasible { from, to, error });
                }
            }
        }
        Ok(())
    }

    /// Minimum power margin across all pairwise shortest paths, in dB.
    pub fn worst_margin(&self) -> Db {
        let mut worst = Db::new(f64::INFINITY);
        for from in 0..self.sites {
            for to in 0..self.sites {
                if from == to {
                    continue;
                }
                if let Ok(trace) = self.budget.evaluate(&self.lightpath(from, to)) {
                    worst = worst.min(trace.margin);
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_24_node_ring_has_12_amplifiers() {
        // §3.3: "we need one amplifier for every two switches".
        let plan = RingOpticalPlan::paper_plan(24).expect("24-node ring must plan");
        assert_eq!(plan.amp_spacing_for_test(), 2);
        assert_eq!(plan.amplifier_count(), 12);
    }

    #[test]
    fn all_paper_ring_sizes_validate() {
        for m in 2..=35 {
            let plan = RingOpticalPlan::paper_plan(m)
                .unwrap_or_else(|e| panic!("ring of {m} failed: {e}"));
            assert!(plan.validate().is_ok());
            assert!(
                plan.worst_margin().value() >= 0.0,
                "ring {m} negative margin"
            );
        }
    }

    #[test]
    fn small_rings_need_no_amplifiers() {
        // ⌊M/2⌋ ≤ 2 hops ⇒ ≤ 3 traversals ⇒ within the 3-traversal budget.
        for m in 2..=5 {
            let plan = RingOpticalPlan::paper_plan(m).unwrap();
            assert_eq!(plan.amplifier_count(), 0, "ring {m} should be passive");
        }
        let plan6 = RingOpticalPlan::paper_plan(6).unwrap();
        assert!(plan6.amplifier_count() > 0, "ring 6 has 3-hop paths");
    }

    #[test]
    fn receiver_pad_prevents_overload_on_short_paths() {
        let plan = RingOpticalPlan::paper_plan(24).unwrap();
        // With amplifiers present, a 1-hop amplified path would arrive at
        // 4 − 12 + 18 = +10 dBm, far above the 0.5 dBm overload: the pad
        // must be non-zero.
        assert!(plan.receiver_pad().attenuation.value() > 0.0);
        // And with the pad every path still validates (checked in plan()).
    }

    #[test]
    fn lightpath_element_counts_match_model() {
        let plan = RingOpticalPlan::paper_plan(9).unwrap();
        // 1-hop path: add + drop + pad = 2 mux stages.
        let p = plan.lightpath_cw(0, 1);
        let muxes = p
            .elements
            .iter()
            .filter(|e| matches!(e, LightpathElement::MuxDemux(_)))
            .count();
        assert_eq!(muxes, 2);
        // 4-hop path: add + 3 express + drop = 5 traversals (integrated).
        let p = plan.lightpath_cw(0, 4);
        let muxes = p
            .elements
            .iter()
            .filter(|e| matches!(e, LightpathElement::MuxDemux(_)))
            .count();
        assert_eq!(muxes, 5);
    }

    #[test]
    fn shortest_direction_is_used() {
        let plan = RingOpticalPlan::paper_plan(10).unwrap();
        // 0 → 9 is 1 hop counter-clockwise: only 2 mux traversals.
        let p = plan.lightpath(0, 9);
        let muxes = p
            .elements
            .iter()
            .filter(|e| matches!(e, LightpathElement::MuxDemux(_)))
            .count();
        assert_eq!(muxes, 2);
    }

    #[test]
    fn rejects_degenerate_rings() {
        match RingOpticalPlan::paper_plan(1) {
            Err(RingPlanError::TooSmall(1)) => {}
            other => panic!("expected TooSmall(1), got {other:?}"),
        }
    }

    #[test]
    fn discrete_mux_model_needs_denser_amplifiers() {
        use crate::components::{PAPER_AMPLIFIER, PAPER_DWDM_80CH, PAPER_DWDM_TRANSCEIVER};
        let integrated = RingOpticalPlan::paper_plan(24).unwrap();
        let discrete = RingOpticalPlan::plan(
            24,
            PAPER_DWDM_TRANSCEIVER,
            PAPER_DWDM_80CH,
            PAPER_AMPLIFIER,
            ExpressModel::DiscreteMuxDemux,
            PowerBudget::default(),
        )
        .unwrap();
        assert!(discrete.amplifier_count() > integrated.amplifier_count());
    }

    impl RingOpticalPlan {
        fn amp_spacing_for_test(&self) -> usize {
            self.amp_spacing
        }
    }
}
