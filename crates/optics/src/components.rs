//! Datasheet-style specifications for the commodity photonic parts a Quartz
//! ring is assembled from.
//!
//! The constants here encode the specific parts the paper prices and sizes
//! its feasibility analysis around (§3.3 and §6):
//!
//! * [`PAPER_DWDM_TRANSCEIVER`] — a 10 Gb/s 40 km DWDM SFP+: +4 dBm maximum
//!   output power, −15 dBm receiver sensitivity.
//! * [`PAPER_DWDM_80CH`] — an 80-channel athermal AWG add/drop mux/demux
//!   with 6 dB insertion loss.
//! * [`PAPER_AMPLIFIER`] — an 80-channel EDFA line amplifier.
//! * [`CISCO_ERA_CWDM_SFP`] / [`PROTOTYPE_CWDM_MUX_4CH`] — the 1.25 Gb/s
//!   CWDM parts of the paper's four-switch prototype (§6), where
//!   *attenuators*, not amplifiers, were needed to protect the receivers.

use crate::units::{Db, Dbm};

/// An optical transceiver (SFP/SFP+ class) specification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransceiverSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Line rate in Gb/s.
    pub rate_gbps: f64,
    /// Maximum (launch) output power.
    pub tx_power: Dbm,
    /// Receiver sensitivity: the minimum power at which the receiver still
    /// meets its bit-error-rate target.
    pub rx_sensitivity: Dbm,
    /// Receiver overload: the maximum input power the receiver tolerates.
    /// Inputs above this must be attenuated (the prototype hit this).
    pub rx_overload: Dbm,
}

impl TransceiverSpec {
    /// The total loss budget between transmitter and receiver.
    pub fn power_budget(&self) -> Db {
        self.tx_power - self.rx_sensitivity
    }

    /// The receiver's dynamic range (overload − sensitivity).
    pub fn dynamic_range(&self) -> Db {
        self.rx_overload - self.rx_sensitivity
    }
}

/// The 10 Gb/s 40 km DWDM SFP+ the paper's feasibility analysis uses
/// (§3.3): 4 dBm out, −15 dBm sensitivity.
pub const PAPER_DWDM_TRANSCEIVER: TransceiverSpec = TransceiverSpec {
    name: "10G DWDM SFP+ 40km",
    rate_gbps: 10.0,
    tx_power: Dbm::new(4.0),
    rx_sensitivity: Dbm::new(-15.0),
    rx_overload: Dbm::new(0.5),
};

/// The 1.25 Gb/s CWDM SFP used in the paper's prototype (§6). Long-reach
/// CWDM SFPs launch up to +2 dBm, which is why the prototype's short,
/// low-loss paths overloaded the receivers until attenuators were added.
pub const CISCO_ERA_CWDM_SFP: TransceiverSpec = TransceiverSpec {
    name: "1.25G CWDM SFP 40km",
    rate_gbps: 1.25,
    tx_power: Dbm::new(2.0),
    rx_sensitivity: Dbm::new(-24.0),
    rx_overload: Dbm::new(-3.0),
};

/// An add/drop wavelength mux/demux specification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MuxDemuxSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Number of wavelength channels the device multiplexes.
    pub channels: u16,
    /// Insertion loss per traversal (positive datasheet figure).
    pub insertion_loss: Db,
}

impl MuxDemuxSpec {
    /// Signed loss applied to a signal traversing the device.
    pub fn loss(&self) -> Db {
        Db::loss(self.insertion_loss.magnitude())
    }
}

/// The 80-channel, 6 dB-insertion-loss athermal AWG DWDM mux/demux of the
/// paper's cost and feasibility analysis.
pub const PAPER_DWDM_80CH: MuxDemuxSpec = MuxDemuxSpec {
    name: "80ch athermal AWG DWDM",
    channels: 80,
    insertion_loss: Db::new(6.0),
};

/// The 4-channel CWDM mux/demux of the paper's prototype (§6). Typical
/// insertion loss for a 4-channel CWDM OADM is ~1.5 dB.
pub const PROTOTYPE_CWDM_MUX_4CH: MuxDemuxSpec = MuxDemuxSpec {
    name: "4ch CWDM mux/demux",
    channels: 4,
    insertion_loss: Db::new(1.5),
};

/// An erbium-doped fiber amplifier (EDFA) specification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AmplifierSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Small-signal gain.
    pub gain: Db,
    /// Maximum total output power (sum across all channels); above this the
    /// amplifier saturates and compresses its gain.
    pub max_output: Dbm,
    /// Number of WDM channels the amplifier is rated to carry
    /// simultaneously. The per-channel output ceiling is
    /// `max_output − 10·log10(channels)`.
    pub channels: u16,
    /// Noise figure — each pass adds this much effective noise. Quartz
    /// rings are short enough that OSNR never binds, but the field lets
    /// callers check.
    pub noise_figure: Db,
}

impl AmplifierSpec {
    /// The per-channel output ceiling when all rated channels are active.
    pub fn per_channel_ceiling(&self) -> Dbm {
        self.max_output - Db::new(10.0 * f64::from(self.channels).log10())
    }
}

/// The 80-channel EDFA line amplifier the paper prices (§3.3): it must at
/// least undo three DWDM traversals (18 dB). High-power booster class
/// (+27 dBm total) so that a fully loaded 80-channel ring still has
/// ~8 dBm/channel of headroom.
pub const PAPER_AMPLIFIER: AmplifierSpec = AmplifierSpec {
    name: "80ch EDFA line amplifier",
    gain: Db::new(18.0),
    max_output: Dbm::new(27.0),
    channels: 80,
    noise_figure: Db::new(5.5),
};

/// A fixed optical attenuator.
///
/// "Attenuators are simple passive devices that do not meaningfully affect
/// the cost of the network" (§3.3) — but they are load-bearing for
/// correctness: without them, short paths can overload receivers (as in the
/// paper's prototype, §6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttenuatorSpec {
    /// Attenuation (positive datasheet figure, 1–30 dB typical).
    pub attenuation: Db,
}

impl AttenuatorSpec {
    /// Creates an attenuator of the given (positive) attenuation.
    ///
    /// # Panics
    /// Panics if `db` is not in the 0–30 dB range of commodity fixed
    /// attenuators.
    pub fn new(db: f64) -> Self {
        assert!(
            (0.0..=30.0).contains(&db),
            "fixed attenuators come in 0..=30 dB, got {db}"
        );
        AttenuatorSpec {
            attenuation: Db::new(db),
        }
    }

    /// Signed loss applied to a traversing signal.
    pub fn loss(&self) -> Db {
        Db::loss(self.attenuation.magnitude())
    }
}

/// Standard single-mode fiber attenuation at 1550 nm, dB per km.
pub const FIBER_LOSS_DB_PER_KM: f64 = 0.25;

/// Loss of a fiber span of `km` kilometers at 1550 nm.
pub fn fiber_span_loss(km: f64) -> Db {
    assert!(km >= 0.0, "span length must be non-negative");
    Db::loss(FIBER_LOSS_DB_PER_KM * km)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_transceiver_budget_is_19db() {
        assert_eq!(PAPER_DWDM_TRANSCEIVER.power_budget().value(), 19.0);
    }

    #[test]
    fn paper_dwdm_traversals_without_amplification() {
        // §3.3: (4 − (−15)) / 6 = 3.17 → 3.
        let budget = PAPER_DWDM_TRANSCEIVER.power_budget();
        let per = PAPER_DWDM_80CH.insertion_loss;
        let ratio = budget.value() / per.value();
        assert!((ratio - 3.1666).abs() < 1e-3);
        assert_eq!(ratio.floor() as u32, 3);
    }

    #[test]
    fn mux_loss_is_signed_negative() {
        assert_eq!(PAPER_DWDM_80CH.loss().value(), -6.0);
        assert!(PAPER_DWDM_80CH.loss().is_loss());
    }

    #[test]
    fn amplifier_undoes_three_muxes() {
        let three_muxes: Db = std::iter::repeat_n(PAPER_DWDM_80CH.loss(), 3).sum();
        assert!(PAPER_AMPLIFIER.gain.value() >= three_muxes.magnitude());
    }

    #[test]
    fn dynamic_range_positive_for_all_parts() {
        for t in [PAPER_DWDM_TRANSCEIVER, CISCO_ERA_CWDM_SFP] {
            assert!(t.dynamic_range().value() > 0.0, "{}", t.name);
        }
    }

    #[test]
    fn attenuator_range_enforced() {
        let a = AttenuatorSpec::new(10.0);
        assert_eq!(a.loss().value(), -10.0);
    }

    #[test]
    #[should_panic(expected = "fixed attenuators")]
    fn attenuator_out_of_range_panics() {
        let _ = AttenuatorSpec::new(40.0);
    }

    #[test]
    fn fiber_loss_scales_with_length() {
        assert_eq!(fiber_span_loss(0.0).value(), 0.0);
        assert!((fiber_span_loss(40.0).value() + 10.0).abs() < 1e-9);
    }

    #[test]
    fn prototype_receiver_overloads_at_direct_connection() {
        // §6: "We actually need to use attenuators to protect the receivers
        // from overloading." A direct hop through two 4ch CWDM muxes loses
        // only 3 dB: 2 dBm − 3 dB = −1 dBm, above the −3 dBm overload.
        let rx = CISCO_ERA_CWDM_SFP.tx_power
            + PROTOTYPE_CWDM_MUX_4CH.loss()
            + PROTOTYPE_CWDM_MUX_4CH.loss();
        assert!(rx >= CISCO_ERA_CWDM_SFP.rx_overload);
    }
}
