//! # quartz-optics
//!
//! Optical-layer component models for the Quartz datacenter design element
//! (Liu et al., *Quartz: A New Design Element for Low-Latency DCNs*,
//! SIGCOMM 2014).
//!
//! Quartz implements a logical full mesh of top-of-rack switches as a
//! physical ring of optical fiber, using commodity wavelength-division
//! multiplexing (WDM). This crate models the photonic layer of that design:
//!
//! * [`units`] — decibel arithmetic ([`Db`], [`Dbm`], [`Milliwatts`]) with
//!   the correct algebra (gains compose additively in dB, powers multiply
//!   in linear units).
//! * [`wavelength`] — ITU wavelength grids: the dense 100 GHz C-band DWDM
//!   grid used by large Quartz rings and the coarse 20 nm CWDM grid used by
//!   the paper's four-switch prototype.
//! * [`components`] — datasheet-style specifications for the commodity
//!   parts a Quartz ring is assembled from: transceivers, add/drop
//!   mux/demuxes, EDFA amplifiers, and fixed attenuators.
//! * [`budget`] — power-budget evaluation along a multi-hop lightpath, and
//!   the closed-form "how many DWDMs can a channel traverse without
//!   amplification" calculation from §3.3 of the paper.
//! * [`dispersion`] — the chromatic-dispersion budget, shown to be three
//!   orders of magnitude away from binding at datacenter scale (why §3.3
//!   only sizes by insertion loss).
//! * [`ring`] — an amplifier/attenuator placement planner for a complete
//!   ring, validating that *every* pairwise lightpath (up to ⌊M/2⌋ optical
//!   hops) stays within the receiver's dynamic range.
//! * [`retune`] — tunable-transceiver retune latency (grid-distance
//!   dependent), the cost model of the online RWA control plane.
//!
//! The headline numbers from the paper are reproduced by this crate's unit
//! tests: a 4 dBm transmitter and a −15 dBm receiver tolerate
//! `(4 − (−15)) / 6 = 3.17` traversals of a 6 dB-loss 80-channel DWDM, so an
//! amplifier is required after every three DWDMs — one amplifier for every
//! two switches of the ring.
//!
//! Everything here is deterministic, allocation-light, and free of I/O; the
//! crate is a pure model library in the spirit of `smoltcp`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod budget;
pub mod components;
pub mod dispersion;
pub mod retune;
pub mod ring;
pub mod units;
pub mod wavelength;

pub use budget::{BudgetError, Lightpath, LightpathElement, PowerBudget, PowerTrace};
pub use components::{
    AmplifierSpec, AttenuatorSpec, MuxDemuxSpec, TransceiverSpec, CISCO_ERA_CWDM_SFP,
    PAPER_AMPLIFIER, PAPER_DWDM_80CH, PAPER_DWDM_TRANSCEIVER, PROTOTYPE_CWDM_MUX_4CH,
};
pub use retune::{RetuneModel, FAST_TUNABLE_SFP, THERMAL_TUNABLE_SFP};
pub use ring::{RingOpticalPlan, RingPlanError, RingSite};
pub use units::{Db, Dbm, Milliwatts};
pub use wavelength::{Band, ChannelId, Grid, Wavelength};
