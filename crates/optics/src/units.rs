//! Decibel arithmetic for optical power-budget calculations.
//!
//! Three newtypes keep the algebra honest:
//!
//! * [`Db`] — a *relative* quantity (gain or loss). Adds with itself.
//! * [`Dbm`] — an *absolute* power referenced to 1 mW. Adding a [`Db`] to a
//!   [`Dbm`] yields a [`Dbm`]; subtracting two [`Dbm`] yields a [`Db`].
//!   Adding two [`Dbm`] is a type error — that operation is physically
//!   meaningless (you cannot add powers in log space).
//! * [`Milliwatts`] — linear power, for when powers genuinely must be
//!   summed (e.g. total power entering an amplifier across all channels).
//!
//! All types are `Copy`, compare with total order via [`f64::total_cmp`],
//! and print in conventional engineering notation.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A relative power ratio in decibels (a gain if positive, a loss if
/// negative).
///
/// ```
/// use quartz_optics::units::Db;
/// let mux_loss = Db::new(-6.0);
/// let two_muxes = mux_loss + mux_loss;
/// assert_eq!(two_muxes.value(), -12.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Db(f64);

impl Db {
    /// A ratio of exactly one (0 dB).
    pub const ZERO: Db = Db(0.0);

    /// Creates a ratio of `value` decibels.
    pub const fn new(value: f64) -> Self {
        Db(value)
    }

    /// Creates a *loss* of `value` decibels; `Db::loss(6.0)` is `-6 dB`.
    ///
    /// Component datasheets quote insertion loss as a positive number; this
    /// constructor keeps call sites readable while storing the physically
    /// signed value.
    pub const fn loss(value: f64) -> Self {
        Db(-value)
    }

    /// Creates a *gain* of `value` decibels (identical to [`Db::new`], but
    /// reads better next to [`Db::loss`]).
    pub const fn gain(value: f64) -> Self {
        Db(value)
    }

    /// The signed decibel value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The equivalent linear power ratio (`10^(dB/10)`).
    pub fn linear_ratio(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Builds a `Db` from a linear power ratio.
    ///
    /// # Panics
    /// Panics if `ratio` is not strictly positive.
    pub fn from_linear_ratio(ratio: f64) -> Self {
        assert!(ratio > 0.0, "power ratio must be positive, got {ratio}");
        Db(10.0 * ratio.log10())
    }

    /// Absolute magnitude in dB, e.g. for reporting a loss as a positive
    /// attenuation figure.
    pub fn magnitude(self) -> f64 {
        self.0.abs()
    }

    /// True if this ratio represents a net gain (> 0 dB).
    pub fn is_gain(self) -> bool {
        self.0 > 0.0
    }

    /// True if this ratio represents a net loss (< 0 dB).
    pub fn is_loss(self) -> bool {
        self.0 < 0.0
    }
}

impl Eq for Db {}

impl PartialOrd for Db {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Db {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl AddAssign for Db {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl SubAssign for Db {
    fn sub_assign(&mut self, rhs: Db) {
        self.0 -= rhs.0;
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl Mul<f64> for Db {
    type Output = Db;
    fn mul(self, rhs: f64) -> Db {
        Db(self.0 * rhs)
    }
}

impl Div<f64> for Db {
    type Output = Db;
    fn div(self, rhs: f64) -> Db {
        Db(self.0 / rhs)
    }
}

impl Sum for Db {
    fn sum<I: Iterator<Item = Db>>(iter: I) -> Db {
        iter.fold(Db::ZERO, Add::add)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

/// An absolute optical power in decibel-milliwatts (0 dBm = 1 mW).
///
/// ```
/// use quartz_optics::units::{Db, Dbm};
/// let tx = Dbm::new(4.0);              // paper's DWDM transceiver output
/// let after_mux = tx + Db::loss(6.0);  // one 80-channel DWDM traversal
/// assert_eq!(after_mux.value(), -2.0);
/// let margin = after_mux - Dbm::new(-15.0); // vs receiver sensitivity
/// assert_eq!(margin.value(), 13.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Dbm(f64);

impl Dbm {
    /// Creates an absolute power of `value` dBm.
    pub const fn new(value: f64) -> Self {
        Dbm(value)
    }

    /// The power in dBm.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to linear milliwatts.
    pub fn to_milliwatts(self) -> Milliwatts {
        Milliwatts(10f64.powf(self.0 / 10.0))
    }
}

impl Eq for Dbm {}

impl PartialOrd for Dbm {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dbm {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.value())
    }
}

impl AddAssign<Db> for Dbm {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.value();
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.value())
    }
}

impl Sub for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db::new(self.0 - rhs.0)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

/// A linear optical power in milliwatts.
///
/// Used where powers must genuinely be summed — e.g. the aggregate power of
/// all WDM channels entering an amplifier, which determines whether the
/// amplifier saturates.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Milliwatts(f64);

impl Milliwatts {
    /// Zero power.
    pub const ZERO: Milliwatts = Milliwatts(0.0);

    /// Creates a power of `value` milliwatts.
    ///
    /// # Panics
    /// Panics if `value` is negative or not finite.
    pub fn new(value: f64) -> Self {
        assert!(
            value >= 0.0 && value.is_finite(),
            "power must be finite and non-negative, got {value}"
        );
        Milliwatts(value)
    }

    /// The power in milliwatts.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to dBm.
    ///
    /// # Panics
    /// Panics on zero power (−∞ dBm).
    pub fn to_dbm(self) -> Dbm {
        assert!(self.0 > 0.0, "cannot express 0 mW in dBm");
        Dbm(10.0 * self.0.log10())
    }
}

impl Eq for Milliwatts {}

impl PartialOrd for Milliwatts {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Milliwatts {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Milliwatts {
    type Output = Milliwatts;
    fn add(self, rhs: Milliwatts) -> Milliwatts {
        Milliwatts(self.0 + rhs.0)
    }
}

impl Sum for Milliwatts {
    fn sum<I: Iterator<Item = Milliwatts>>(iter: I) -> Milliwatts {
        iter.fold(Milliwatts::ZERO, Add::add)
    }
}

impl Mul<f64> for Milliwatts {
    type Output = Milliwatts;
    fn mul(self, rhs: f64) -> Milliwatts {
        Milliwatts(self.0 * rhs)
    }
}

impl fmt::Display for Milliwatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} mW", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn db_loss_and_gain_constructors_are_signed() {
        assert_eq!(Db::loss(6.0).value(), -6.0);
        assert_eq!(Db::gain(17.0).value(), 17.0);
        assert!(Db::loss(6.0).is_loss());
        assert!(Db::gain(17.0).is_gain());
        assert!(!Db::ZERO.is_gain() && !Db::ZERO.is_loss());
    }

    #[test]
    fn db_addition_composes_losses() {
        let total: Db = std::iter::repeat_n(Db::loss(6.0), 3).sum();
        assert_eq!(total.value(), -18.0);
    }

    #[test]
    fn db_linear_ratio_round_trips() {
        let ratio = Db::new(3.0).linear_ratio();
        assert!(close(ratio, 1.9952623149688795));
        let back = Db::from_linear_ratio(ratio);
        assert!(close(back.value(), 3.0));
    }

    #[test]
    #[should_panic(expected = "power ratio must be positive")]
    fn db_from_nonpositive_ratio_panics() {
        let _ = Db::from_linear_ratio(0.0);
    }

    #[test]
    fn dbm_plus_db_is_dbm() {
        let tx = Dbm::new(4.0);
        let rx = tx + Db::loss(6.0) + Db::loss(6.0) + Db::loss(6.0);
        assert!(close(rx.value(), -14.0));
    }

    #[test]
    fn dbm_difference_is_db() {
        let margin = Dbm::new(4.0) - Dbm::new(-15.0);
        assert!(close(margin.value(), 19.0));
    }

    #[test]
    fn paper_budget_allows_three_dwdm_traversals() {
        // §3.3: (4 dBm − (−15 dBm)) / 6 dB = 3.17 → 3 full traversals.
        let budget = Dbm::new(4.0) - Dbm::new(-15.0);
        let per_mux = Db::loss(6.0);
        let hops = (budget.value() / per_mux.magnitude()).floor() as u32;
        assert_eq!(hops, 3);
    }

    #[test]
    fn milliwatt_conversion_round_trips() {
        let p = Dbm::new(4.0).to_milliwatts();
        assert!(close(p.value(), 2.51188643150958));
        assert!(close(p.to_dbm().value(), 4.0));
    }

    #[test]
    fn zero_dbm_is_one_milliwatt() {
        assert!(close(Dbm::new(0.0).to_milliwatts().value(), 1.0));
    }

    #[test]
    fn milliwatts_sum_linearly() {
        // Two equal powers: +3.0103 dB, not +2×.
        let one = Dbm::new(0.0).to_milliwatts();
        let combined = (one + one).to_dbm();
        assert!(close(combined.value(), 10.0 * 2f64.log10()));
    }

    #[test]
    fn ordering_is_total() {
        assert!(Dbm::new(-15.0) < Dbm::new(4.0));
        assert!(Db::loss(6.0) < Db::ZERO);
        assert!(Milliwatts::new(0.5) < Milliwatts::new(1.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Db::loss(6.0).to_string(), "-6.00 dB");
        assert_eq!(Dbm::new(4.0).to_string(), "4.00 dBm");
        assert_eq!(Milliwatts::new(1.0).to_string(), "1.0000 mW");
    }

    #[test]
    #[should_panic(expected = "power must be finite and non-negative")]
    fn negative_milliwatts_panics() {
        let _ = Milliwatts::new(-1.0);
    }
}
