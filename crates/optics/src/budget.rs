//! Power-budget evaluation along a multi-hop lightpath.
//!
//! A Quartz lightpath from switch *s* to switch *t* leaves *s*'s
//! transceiver, is **added** by *s*'s mux (one mux traversal), passes
//! *through* every intermediate site (each an express traversal of that
//! site's mux/demux), is **dropped** by *t*'s demux, and lands on *t*'s
//! receiver. Amplifiers inserted on the ring restore power; attenuators
//! protect receivers on short paths.
//!
//! [`PowerBudget::evaluate`] walks the element sequence and returns the
//! full power trace, failing if the signal ever falls below the receiver
//! sensitivity *margin* or arrives above the receiver overload point.

use crate::components::{
    fiber_span_loss, AmplifierSpec, AttenuatorSpec, MuxDemuxSpec, TransceiverSpec,
};
use crate::units::{Db, Dbm};
use std::fmt;

/// One passive or active element on a lightpath.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LightpathElement {
    /// Traversal of a mux or demux stage (add, drop, or express pass).
    MuxDemux(MuxDemuxSpec),
    /// A fiber span of the given length in kilometers.
    Fiber {
        /// Span length in kilometers.
        km: f64,
    },
    /// An inline EDFA amplifier.
    Amplifier(AmplifierSpec),
    /// A fixed attenuator.
    Attenuator(AttenuatorSpec),
}

impl LightpathElement {
    /// The signed power change this element applies to a single channel.
    pub fn delta(&self) -> Db {
        match self {
            LightpathElement::MuxDemux(m) => m.loss(),
            LightpathElement::Fiber { km } => fiber_span_loss(*km),
            LightpathElement::Amplifier(a) => a.gain,
            LightpathElement::Attenuator(a) => a.loss(),
        }
    }

    /// Short label for power traces.
    pub fn label(&self) -> &'static str {
        match self {
            LightpathElement::MuxDemux(_) => "mux/demux",
            LightpathElement::Fiber { .. } => "fiber",
            LightpathElement::Amplifier(_) => "amplifier",
            LightpathElement::Attenuator(_) => "attenuator",
        }
    }
}

/// A complete lightpath: transmitter, ordered elements, receiver.
#[derive(Clone, Debug)]
pub struct Lightpath {
    /// The transmitting/receiving transceiver model (Quartz uses identical
    /// transceivers at both ends).
    pub transceiver: TransceiverSpec,
    /// Elements in propagation order.
    pub elements: Vec<LightpathElement>,
}

impl Lightpath {
    /// Creates a lightpath with no intermediate elements.
    pub fn new(transceiver: TransceiverSpec) -> Self {
        Lightpath {
            transceiver,
            elements: Vec::new(),
        }
    }

    /// Appends an element, builder-style.
    pub fn with(mut self, e: LightpathElement) -> Self {
        self.elements.push(e);
        self
    }
}

/// Why a lightpath fails its power budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BudgetError {
    /// Power fell below sensitivity + margin at element `index`.
    BelowSensitivity {
        /// Index into the element list where the failure occurred, or the
        /// element count if the failure is at the receiver itself.
        index: usize,
        /// Power at the failure point.
        power: Dbm,
        /// The floor that was violated (sensitivity + margin).
        floor: Dbm,
    },
    /// Power arrived at the receiver above its overload point.
    ReceiverOverload {
        /// Power at the receiver.
        power: Dbm,
        /// The receiver's overload ceiling.
        ceiling: Dbm,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::BelowSensitivity {
                index,
                power,
                floor,
            } => write!(
                f,
                "signal fell to {power} (< floor {floor}) after element {index}"
            ),
            BudgetError::ReceiverOverload { power, ceiling } => {
                write!(f, "receiver overload: {power} > {ceiling}")
            }
        }
    }
}

impl std::error::Error for BudgetError {}

/// Power levels recorded at each point of a lightpath.
#[derive(Clone, Debug)]
pub struct PowerTrace {
    /// Launch power.
    pub launch: Dbm,
    /// Power after each element, in order.
    pub after_each: Vec<Dbm>,
    /// Power at the receiver (equals the last entry, or launch power for an
    /// empty path).
    pub at_receiver: Dbm,
    /// Margin above the receiver sensitivity at the receiver.
    pub margin: Db,
    /// Optical signal-to-noise ratio at the receiver (0.1 nm reference
    /// bandwidth), accumulated over the path's amplifiers; `None` for
    /// all-passive paths (no ASE noise added). Quartz rings are short
    /// enough that this "never binds" — the tests pin that claim.
    pub osnr_db: Option<f64>,
}

/// Power-budget evaluator with a configurable engineering margin.
///
/// # Examples
///
/// ```
/// use quartz_optics::budget::{Lightpath, LightpathElement, PowerBudget};
/// use quartz_optics::components::{PAPER_DWDM_80CH, PAPER_DWDM_TRANSCEIVER};
///
/// // §3.3's arithmetic: the 19 dB budget tolerates three 6 dB DWDMs.
/// let budget = PowerBudget::default();
/// let mut path = Lightpath::new(PAPER_DWDM_TRANSCEIVER);
/// for _ in 0..3 {
///     path = path.with(LightpathElement::MuxDemux(PAPER_DWDM_80CH));
/// }
/// assert!(budget.evaluate(&path).is_ok());
/// let too_far = path.with(LightpathElement::MuxDemux(PAPER_DWDM_80CH));
/// assert!(budget.evaluate(&too_far).is_err());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PowerBudget {
    /// Extra margin (positive dB) demanded above raw receiver sensitivity,
    /// to absorb aging, connector dirt, and temperature drift. The paper's
    /// arithmetic uses 0 dB; real deployments use 2–3 dB.
    pub margin: Db,
}

impl Default for PowerBudget {
    fn default() -> Self {
        PowerBudget { margin: Db::ZERO }
    }
}

impl PowerBudget {
    /// An evaluator with the given engineering margin in dB.
    pub fn with_margin(db: f64) -> Self {
        assert!(db >= 0.0, "margin must be non-negative");
        PowerBudget {
            margin: Db::new(db),
        }
    }

    /// Evaluates a lightpath, returning the power trace or the first
    /// budget violation.
    ///
    /// Amplifiers are modeled with gain compression: the output per channel
    /// is clamped to `max_output − 10·log10(channels)` (the per-channel
    /// share of the amplifier's total output ceiling with all rated
    /// channels active — the worst case for a fully loaded Quartz ring).
    pub fn evaluate(&self, path: &Lightpath) -> Result<PowerTrace, BudgetError> {
        let floor = path.transceiver.rx_sensitivity + self.margin;
        let mut power = path.transceiver.tx_power;
        let mut after_each = Vec::with_capacity(path.elements.len());
        // ASE accumulation: each EDFA stage contributes an OSNR of
        // 58 dB + P_in(dBm) − NF(dB) at 0.1 nm; stages combine as
        // 1/OSNR_total = Σ 1/OSNR_i (linear).
        let mut inv_osnr = 0.0f64;
        let mut amp_stages = 0usize;

        for (i, e) in path.elements.iter().enumerate() {
            power = match e {
                LightpathElement::Amplifier(a) => {
                    let stage_osnr_db = 58.0 + power.value() - a.noise_figure.value();
                    inv_osnr += 10f64.powf(-stage_osnr_db / 10.0);
                    amp_stages += 1;
                    (power + a.gain).min(a.per_channel_ceiling())
                }
                other => power + other.delta(),
            };
            after_each.push(power);
            if power < floor {
                return Err(BudgetError::BelowSensitivity {
                    index: i,
                    power,
                    floor,
                });
            }
        }

        if power > path.transceiver.rx_overload {
            return Err(BudgetError::ReceiverOverload {
                power,
                ceiling: path.transceiver.rx_overload,
            });
        }

        Ok(PowerTrace {
            launch: path.transceiver.tx_power,
            at_receiver: power,
            margin: power - floor,
            after_each,
            osnr_db: (amp_stages > 0).then(|| -10.0 * inv_osnr.log10()),
        })
    }

    /// The paper's §3.3 closed form: how many mux/demux traversals the
    /// transceiver's budget tolerates without amplification.
    ///
    /// For the paper's parts this is `(4 − (−15)) / 6 = 3.17 → 3`.
    pub fn max_mux_traversals(&self, t: &TransceiverSpec, m: &MuxDemuxSpec) -> u32 {
        let budget = (t.power_budget() - self.margin).value();
        let per = m.insertion_loss.magnitude();
        if budget <= 0.0 {
            0
        } else {
            (budget / per).floor() as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{
        CISCO_ERA_CWDM_SFP, PAPER_AMPLIFIER, PAPER_DWDM_80CH, PAPER_DWDM_TRANSCEIVER,
        PROTOTYPE_CWDM_MUX_4CH,
    };

    fn mux() -> LightpathElement {
        LightpathElement::MuxDemux(PAPER_DWDM_80CH)
    }

    #[test]
    fn paper_closed_form_is_three_traversals() {
        let b = PowerBudget::default();
        assert_eq!(
            b.max_mux_traversals(&PAPER_DWDM_TRANSCEIVER, &PAPER_DWDM_80CH),
            3
        );
    }

    #[test]
    fn margin_reduces_traversal_count() {
        let b = PowerBudget::with_margin(3.0);
        assert_eq!(
            b.max_mux_traversals(&PAPER_DWDM_TRANSCEIVER, &PAPER_DWDM_80CH),
            2
        );
    }

    #[test]
    fn three_muxes_pass_four_fail() {
        let b = PowerBudget::default();
        let mut p = Lightpath::new(PAPER_DWDM_TRANSCEIVER);
        for _ in 0..3 {
            p = p.with(mux());
        }
        assert!(b.evaluate(&p).is_ok(), "3 muxes must fit the budget");
        let p4 = p.with(mux());
        match b.evaluate(&p4) {
            Err(BudgetError::BelowSensitivity { index, .. }) => assert_eq!(index, 3),
            other => panic!("expected BelowSensitivity, got {other:?}"),
        }
    }

    #[test]
    fn amplifier_restores_budget() {
        let b = PowerBudget::default();
        let mut p = Lightpath::new(PAPER_DWDM_TRANSCEIVER);
        // 3 muxes, amplifier, 3 more muxes, then attenuate to a safe level.
        for _ in 0..3 {
            p = p.with(mux());
        }
        p = p.with(LightpathElement::Amplifier(PAPER_AMPLIFIER));
        for _ in 0..3 {
            p = p.with(mux());
        }
        let trace = b.evaluate(&p).expect("amplified path must pass");
        // 4 − 18 + 18 − 18 = −14 dBm, 1 dB above sensitivity.
        assert!((trace.at_receiver.value() + 14.0).abs() < 1e-9);
        assert!((trace.margin.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trace_records_every_element() {
        let b = PowerBudget::default();
        let p = Lightpath::new(PAPER_DWDM_TRANSCEIVER)
            .with(mux())
            .with(LightpathElement::Fiber { km: 0.1 })
            .with(mux());
        let t = b.evaluate(&p).unwrap();
        assert_eq!(t.after_each.len(), 3);
        assert_eq!(t.launch.value(), 4.0);
        assert_eq!(*t.after_each.last().unwrap(), t.at_receiver);
        // Monotone decreasing for an all-passive path.
        assert!(t.after_each.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn prototype_direct_path_overloads_without_attenuator() {
        // §6: the prototype needed attenuators to protect receivers.
        let b = PowerBudget::default();
        let direct = Lightpath::new(CISCO_ERA_CWDM_SFP)
            .with(LightpathElement::MuxDemux(PROTOTYPE_CWDM_MUX_4CH))
            .with(LightpathElement::MuxDemux(PROTOTYPE_CWDM_MUX_4CH));
        match b.evaluate(&direct) {
            Err(BudgetError::ReceiverOverload { .. }) => {}
            other => panic!("expected overload, got {other:?}"),
        }
        // A 5 dB pad fixes it.
        let padded = Lightpath::new(CISCO_ERA_CWDM_SFP)
            .with(LightpathElement::MuxDemux(PROTOTYPE_CWDM_MUX_4CH))
            .with(LightpathElement::MuxDemux(PROTOTYPE_CWDM_MUX_4CH))
            .with(LightpathElement::Attenuator(AttenuatorSpec::new(5.0)));
        assert!(b.evaluate(&padded).is_ok());
    }

    #[test]
    fn amplifier_gain_compresses_at_ceiling() {
        // A small inline EDFA (total ceiling 10 dBm across 80 channels ⇒
        // ~ −9 dBm per channel) driven hot clamps its output.
        let small = crate::components::AmplifierSpec {
            name: "small EDFA",
            gain: Db::new(18.0),
            max_output: Dbm::new(10.0),
            channels: 80,
            noise_figure: Db::new(5.5),
        };
        let b = PowerBudget::default();
        let p = Lightpath::new(PAPER_DWDM_TRANSCEIVER)
            .with(mux()) // 4 − 6 = −2 dBm
            .with(LightpathElement::Amplifier(small)); // clamped to ceiling
        let t = b.evaluate(&p).unwrap();
        let ceiling = small.per_channel_ceiling();
        assert_eq!(t.after_each[1], ceiling);
        assert!(t.at_receiver <= ceiling);
    }

    #[test]
    fn paper_amplifier_has_headroom_at_full_load() {
        // 27 dBm total over 80 channels ⇒ ~7.97 dBm/channel, above the
        // 4 dBm launch power, so a fully loaded ring never saturates.
        assert!(PAPER_AMPLIFIER.per_channel_ceiling() > Dbm::new(4.0));
    }

    #[test]
    fn datacenter_scale_fiber_loss_is_negligible() {
        // Cross-datacenter spans are ≤ ~1 km: under 0.3 dB, irrelevant
        // next to a 6 dB mux — this is why the paper's arithmetic ignores
        // fiber loss.
        let b = PowerBudget::default();
        let bare = Lightpath::new(PAPER_DWDM_TRANSCEIVER)
            .with(mux())
            .with(mux());
        let with_fiber = Lightpath::new(PAPER_DWDM_TRANSCEIVER)
            .with(mux())
            .with(LightpathElement::Fiber { km: 1.0 })
            .with(mux());
        let a = b.evaluate(&bare).unwrap().at_receiver.value();
        let c = b.evaluate(&with_fiber).unwrap().at_receiver.value();
        assert!((a - c).abs() <= 0.25 + 1e-9);
    }

    #[test]
    fn error_display_is_informative() {
        let e = BudgetError::BelowSensitivity {
            index: 3,
            power: Dbm::new(-20.0),
            floor: Dbm::new(-15.0),
        };
        let s = e.to_string();
        assert!(s.contains("element 3") && s.contains("-20.00 dBm"));
    }

    #[test]
    fn passive_paths_have_no_osnr_figure() {
        let b = PowerBudget::default();
        let p = Lightpath::new(PAPER_DWDM_TRANSCEIVER)
            .with(mux())
            .with(mux());
        assert_eq!(b.evaluate(&p).unwrap().osnr_db, None);
    }

    #[test]
    fn osnr_never_binds_on_quartz_scale_paths() {
        // §3.3 sizes the ring purely by power budget; this test pins the
        // implicit claim that ASE noise is irrelevant at datacenter
        // scale: even the worst amplified path keeps OSNR far above the
        // ~16 dB a 10 G receiver needs.
        let b = PowerBudget::default();
        let mut p = Lightpath::new(PAPER_DWDM_TRANSCEIVER);
        for stage in 0..5 {
            for _ in 0..3 {
                p = p.with(mux());
            }
            p = p.with(LightpathElement::Amplifier(PAPER_AMPLIFIER));
            let _ = stage;
        }
        p = p.with(mux()); // drop stage keeps the receiver in range
        let t = b.evaluate(&p).unwrap();
        let osnr = t.osnr_db.expect("amplified path reports OSNR");
        assert!(osnr > 25.0, "OSNR {osnr:.1} dB too low");
    }

    #[test]
    fn osnr_degrades_with_each_amplifier() {
        let b = PowerBudget::default();
        let osnr_after = |amps: usize| {
            let mut p = Lightpath::new(PAPER_DWDM_TRANSCEIVER);
            for _ in 0..amps {
                for _ in 0..3 {
                    p = p.with(mux());
                }
                p = p.with(LightpathElement::Amplifier(PAPER_AMPLIFIER));
            }
            p = p.with(mux()); // drop stage keeps the receiver in range
            b.evaluate(&p).unwrap().osnr_db.unwrap()
        };
        assert!(osnr_after(1) > osnr_after(2));
        assert!(osnr_after(2) > osnr_after(4));
    }
}
