//! Tunable-transceiver retune latency — the price of *changing* a
//! wavelength plan at runtime.
//!
//! §3.1 of the paper treats wavelength planning as "a one-time event that
//! is done at design time". The online RWA control plane relaxes that:
//! when a fiber cut (or repair) forces a pair onto a different channel,
//! both of the pair's transceivers must re-tune their lasers to the new
//! grid slot, and the lightpath is dark until they lock.
//!
//! Commodity tunable lasers come in two speed classes:
//!
//! * **Thermally tuned DFB** — the cheap, ubiquitous tunable DWDM SFP+.
//!   Tuning moves the laser temperature, so settling is milliseconds and
//!   grows with the grid distance travelled.
//! * **Electronically tuned SG-DBR** — "fast tunable" parts built for
//!   optical burst/packet switching research; tens of microseconds of
//!   control-loop settling plus a small per-channel component.
//!
//! Both are modeled by the same affine form: a fixed settle/lock window
//! plus a per-grid-slot term proportional to how far the carrier moves.
//! The model is deliberately integer-nanosecond so simulator event times
//! derived from it stay exact.

use crate::wavelength::{ChannelId, Grid};

/// Retune latency model for a tunable transceiver: an affine function of
/// grid distance, `base_ns + per_channel_ns × |to − from|`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetuneModel {
    /// Fixed cost of any retune: control-loop settle + receiver re-lock.
    pub base_ns: u64,
    /// Additional cost per grid slot of carrier movement.
    pub per_channel_ns: u64,
}

impl RetuneModel {
    /// A model with the given fixed and per-channel costs.
    pub const fn new(base_ns: u64, per_channel_ns: u64) -> Self {
        RetuneModel {
            base_ns,
            per_channel_ns,
        }
    }

    /// The zero-cost model: retunes complete instantaneously. The
    /// baseline for "what does reconfiguration latency cost" A/B runs.
    pub const fn instant() -> Self {
        RetuneModel {
            base_ns: 0,
            per_channel_ns: 0,
        }
    }

    /// Nanoseconds a transceiver is dark while moving from channel
    /// `from` to channel `to`. Zero when the channel does not change.
    pub fn latency_ns(&self, from: ChannelId, to: ChannelId) -> u64 {
        let dist = u64::from(from.0.abs_diff(to.0));
        if dist == 0 {
            return 0;
        }
        self.base_ns + self.per_channel_ns * dist
    }

    /// Worst-case retune across `grid`: a full sweep from one edge of
    /// the grid to the other.
    pub fn worst_case_ns(&self, grid: &Grid) -> u64 {
        let count = grid.channel_count();
        if count < 2 {
            return 0;
        }
        self.latency_ns(ChannelId(0), ChannelId(count - 1))
    }

    /// Whether this model charges nothing for any retune.
    pub fn is_instant(&self) -> bool {
        self.base_ns == 0 && self.per_channel_ns == 0
    }
}

/// An electronically tuned SG-DBR "fast tunable" transceiver: ~50 µs of
/// control-loop settling plus 0.5 µs per grid slot. The speed class
/// optical burst switching literature assumes.
pub const FAST_TUNABLE_SFP: RetuneModel = RetuneModel::new(50_000, 500);

/// A thermally tuned DFB tunable DWDM SFP+: milliseconds to move and
/// re-lock, growing noticeably with grid distance. The commodity part a
/// cost-conscious Quartz deployment would actually buy.
pub const THERMAL_TUNABLE_SFP: RetuneModel = RetuneModel::new(2_000_000, 150_000);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_move_is_free() {
        for model in [
            FAST_TUNABLE_SFP,
            THERMAL_TUNABLE_SFP,
            RetuneModel::instant(),
        ] {
            assert_eq!(model.latency_ns(ChannelId(7), ChannelId(7)), 0);
        }
    }

    #[test]
    fn latency_is_symmetric_and_monotone_in_distance() {
        let m = FAST_TUNABLE_SFP;
        assert_eq!(
            m.latency_ns(ChannelId(3), ChannelId(40)),
            m.latency_ns(ChannelId(40), ChannelId(3))
        );
        let mut prev = 0;
        for d in 1..80u16 {
            let l = m.latency_ns(ChannelId(0), ChannelId(d));
            assert!(l > prev, "distance {d} not monotone");
            prev = l;
        }
    }

    #[test]
    fn affine_form_matches() {
        let m = RetuneModel::new(1_000, 10);
        assert_eq!(m.latency_ns(ChannelId(2), ChannelId(7)), 1_000 + 5 * 10);
    }

    #[test]
    fn instant_model_is_identically_zero() {
        let m = RetuneModel::instant();
        assert!(m.is_instant());
        assert_eq!(m.latency_ns(ChannelId(0), ChannelId(159)), 0);
        assert_eq!(m.worst_case_ns(&Grid::dwdm_50ghz_160ch()), 0);
    }

    #[test]
    fn worst_case_spans_the_grid() {
        let g = Grid::dwdm_100ghz_80ch();
        assert_eq!(
            FAST_TUNABLE_SFP.worst_case_ns(&g),
            FAST_TUNABLE_SFP.latency_ns(ChannelId(0), ChannelId(79))
        );
    }

    #[test]
    fn thermal_is_slower_than_fast_everywhere() {
        for d in 1..160u16 {
            assert!(
                THERMAL_TUNABLE_SFP.latency_ns(ChannelId(0), ChannelId(d))
                    > FAST_TUNABLE_SFP.latency_ns(ChannelId(0), ChannelId(d))
            );
        }
    }
}
