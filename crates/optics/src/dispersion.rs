//! Chromatic dispersion budget — the *other* optical impairment, shown
//! to be irrelevant at datacenter scale.
//!
//! §3.3 sizes Quartz rings purely by insertion loss; dispersion is never
//! mentioned. This module justifies that omission quantitatively:
//! standard single-mode fiber disperses ~17 ps/(nm·km) at 1550 nm, a
//! 10 Gb/s NRZ receiver tolerates on the order of 800 ps/nm (which is
//! exactly why the paper's 40 km-rated DWDM SFP+ works at 40 km), and a
//! datacenter ring accumulates a few *tens* of ps/nm — three orders of
//! magnitude inside the budget.

/// SMF-28 chromatic dispersion at 1550 nm, ps/(nm·km).
pub const SMF_DISPERSION_PS_PER_NM_KM: f64 = 17.0;

/// Dispersion tolerance of a 10 Gb/s NRZ receiver, ps/nm (typical
/// 40 km-class DWDM SFP+ datasheet figure).
pub const TOLERANCE_10G_PS_PER_NM: f64 = 800.0;

/// Accumulated dispersion over `km` of standard fiber, ps/nm.
pub fn accumulated_ps_per_nm(km: f64) -> f64 {
    assert!(km >= 0.0, "span length must be non-negative");
    SMF_DISPERSION_PS_PER_NM_KM * km
}

/// Maximum uncompensated reach for a receiver tolerating
/// `tolerance_ps_nm`, in km.
pub fn max_reach_km(tolerance_ps_nm: f64) -> f64 {
    assert!(tolerance_ps_nm > 0.0);
    tolerance_ps_nm / SMF_DISPERSION_PS_PER_NM_KM
}

/// Whether a ring whose total circumference is `ring_km` is dispersion-
/// safe for 10 Gb/s channels even on the longest (half-ring) lightpath.
pub fn ring_is_dispersion_safe(ring_km: f64) -> bool {
    accumulated_ps_per_nm(ring_km / 2.0) <= TOLERANCE_10G_PS_PER_NM
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_km_transceivers_are_self_consistent() {
        // The paper's 40 km-rated part must actually reach ~40 km on its
        // dispersion budget.
        let reach = max_reach_km(TOLERANCE_10G_PS_PER_NM);
        assert!(reach >= 40.0, "reach {reach:.1} km");
    }

    #[test]
    fn datacenter_rings_never_notice_dispersion() {
        // Even an absurdly long 4 km ring circumference accumulates only
        // 34 ps/nm on its worst path — ~4% of the budget. §3.3's silence
        // on dispersion is justified.
        assert!(ring_is_dispersion_safe(4.0));
        let worst = accumulated_ps_per_nm(2.0);
        assert!(worst < 0.05 * TOLERANCE_10G_PS_PER_NM);
    }

    #[test]
    fn metro_scale_would_not_be_safe() {
        // Sanity that the check can fail: a 120 km metro ring's 60 km
        // half-path exceeds the uncompensated 10 G budget.
        assert!(!ring_is_dispersion_safe(120.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_span_rejected() {
        let _ = accumulated_ps_per_nm(-1.0);
    }
}
