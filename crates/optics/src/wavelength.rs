//! ITU wavelength grids for WDM channel planning.
//!
//! Quartz assigns each communicating switch pair a dedicated wavelength
//! channel (§3.1 of the paper). Two commodity grids matter:
//!
//! * **DWDM** — the dense 100 GHz ITU-T G.694.1 C-band grid. The paper's
//!   80-channel mux/demux and the "current fiber cables can only support
//!   160 channels at 10 Gbps" limit both refer to this grid (160 channels =
//!   50 GHz spacing; 80 channels = 100 GHz spacing).
//! * **CWDM** — the coarse 20 nm ITU-T G.694.2 grid (1270–1610 nm), used by
//!   the paper's four-switch prototype (1470/1490/1510 nm SFPs).
//!
//! Wavelengths are stored in integer picometers so channels are exactly
//! comparable and hashable.

use std::fmt;

/// Speed of light in vacuum, m/s.
const C_M_PER_S: f64 = 299_792_458.0;

/// A single optical carrier wavelength, stored in integer picometers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Wavelength {
    picometers: u64,
}

impl Wavelength {
    /// Creates a wavelength from nanometers.
    ///
    /// # Panics
    /// Panics if `nm` is not within the fiber-optic window (600–2000 nm).
    pub fn from_nm(nm: f64) -> Self {
        assert!(
            (600.0..=2000.0).contains(&nm),
            "wavelength {nm} nm outside the optical fiber window"
        );
        Wavelength {
            picometers: (nm * 1000.0).round() as u64,
        }
    }

    /// Creates a wavelength from a carrier frequency in THz.
    pub fn from_thz(thz: f64) -> Self {
        let nm = C_M_PER_S / (thz * 1e12) * 1e9;
        Self::from_nm(nm)
    }

    /// The wavelength in nanometers.
    pub fn nm(self) -> f64 {
        self.picometers as f64 / 1000.0
    }

    /// The carrier frequency in THz.
    pub fn thz(self) -> f64 {
        C_M_PER_S / (self.nm() * 1e-9) / 1e12
    }
}

impl fmt::Display for Wavelength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} nm", self.nm())
    }
}

/// Optical transmission band (informational; Quartz uses the C band for
/// DWDM and the full O–L span for CWDM).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Band {
    /// Original band, 1260–1360 nm.
    O,
    /// Extended band, 1360–1460 nm.
    E,
    /// Short band, 1460–1530 nm.
    S,
    /// Conventional band, 1530–1565 nm — where EDFA amplifiers work, hence
    /// where DWDM lives.
    C,
    /// Long band, 1565–1625 nm.
    L,
}

impl Band {
    /// Classifies a wavelength into its band, if it falls in one.
    pub fn of(w: Wavelength) -> Option<Band> {
        let nm = w.nm();
        match nm {
            x if (1260.0..1360.0).contains(&x) => Some(Band::O),
            x if (1360.0..1460.0).contains(&x) => Some(Band::E),
            x if (1460.0..1530.0).contains(&x) => Some(Band::S),
            x if (1530.0..1565.0).contains(&x) => Some(Band::C),
            x if (1565.0..=1625.0).contains(&x) => Some(Band::L),
            _ => None,
        }
    }
}

/// Index of a channel within a [`Grid`].
///
/// Channel assignment in `quartz-core` works entirely in terms of these
/// indices; the grid maps them to physical wavelengths at the end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u16);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// A WDM channel grid: a finite, ordered set of usable wavelengths.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid {
    name: &'static str,
    wavelengths: Vec<Wavelength>,
}

impl Grid {
    /// The ITU-T G.694.1 DWDM C-band grid at 100 GHz spacing, 80 channels
    /// (191.50–199.40 THz ascending). This is the grid of the paper's
    /// 80-channel athermal AWG mux/demux.
    pub fn dwdm_100ghz_80ch() -> Grid {
        Self::dwdm(100.0, 80)
    }

    /// The 50 GHz-spaced DWDM grid with 160 channels — the "160 channels in
    /// an optical fiber" technology ceiling the paper uses to derive the
    /// maximum ring size of 35.
    pub fn dwdm_50ghz_160ch() -> Grid {
        Self::dwdm(50.0, 160)
    }

    fn dwdm(spacing_ghz: f64, count: u16) -> Grid {
        // Anchor at 191.5 THz and step upward, keeping within the C band's
        // amplifier-friendly neighborhood.
        let wavelengths = (0..count)
            .map(|i| Wavelength::from_thz(191.5 + f64::from(i) * spacing_ghz / 1000.0))
            .collect();
        Grid {
            name: if count == 160 {
                "DWDM 50GHz x160"
            } else {
                "DWDM 100GHz"
            },
            wavelengths,
        }
    }

    /// The ITU-T G.694.2 CWDM grid: 18 channels, 1271–1611 nm at 20 nm
    /// spacing. The paper's prototype uses the 1470/1490/1510 nm channels.
    pub fn cwdm_18ch() -> Grid {
        let wavelengths = (0..18u16)
            .map(|i| Wavelength::from_nm(1271.0 + f64::from(i) * 20.0))
            .collect();
        Grid {
            name: "CWDM 20nm",
            wavelengths,
        }
    }

    /// Human-readable grid name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of channels in the grid.
    pub fn channel_count(&self) -> u16 {
        self.wavelengths.len() as u16
    }

    /// The wavelength of channel `id`, or `None` if out of range.
    pub fn wavelength(&self, id: ChannelId) -> Option<Wavelength> {
        self.wavelengths.get(usize::from(id.0)).copied()
    }

    /// Iterates `(ChannelId, Wavelength)` pairs in grid order.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, Wavelength)> + '_ {
        self.wavelengths
            .iter()
            .enumerate()
            .map(|(i, w)| (ChannelId(i as u16), *w))
    }

    /// The channel carrying wavelength `w`, if it is on this grid.
    pub fn channel_of(&self, w: Wavelength) -> Option<ChannelId> {
        self.wavelengths
            .iter()
            .position(|x| *x == w)
            .map(|i| ChannelId(i as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_frequency_round_trip() {
        let w = Wavelength::from_thz(193.1); // ITU anchor frequency
        assert!((w.thz() - 193.1).abs() < 1e-3);
        assert!((w.nm() - 1552.52).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "outside the optical fiber window")]
    fn visible_light_rejected() {
        let _ = Wavelength::from_nm(532.0);
    }

    #[test]
    fn dwdm_grid_has_80_unique_c_band_adjacent_channels() {
        let g = Grid::dwdm_100ghz_80ch();
        assert_eq!(g.channel_count(), 80);
        let mut seen = std::collections::HashSet::new();
        for (_, w) in g.channels() {
            assert!(seen.insert(w), "duplicate wavelength {w}");
            // 191.5–199.4 THz spans ~1503–1565 nm (C band and slightly
            // below); all channels must stay in the fiber low-loss window.
            assert!((1450.0..1600.0).contains(&w.nm()), "{w} out of window");
        }
    }

    #[test]
    fn dwdm_spacing_is_100ghz() {
        let g = Grid::dwdm_100ghz_80ch();
        let freqs: Vec<f64> = g.channels().map(|(_, w)| w.thz()).collect();
        for pair in freqs.windows(2) {
            assert!(((pair[1] - pair[0]) - 0.1).abs() < 1e-3);
        }
    }

    #[test]
    fn fiber_ceiling_grid_has_160_channels() {
        assert_eq!(Grid::dwdm_50ghz_160ch().channel_count(), 160);
    }

    #[test]
    fn cwdm_grid_contains_prototype_wavelengths() {
        let g = Grid::cwdm_18ch();
        assert_eq!(g.channel_count(), 18);
        for nm in [1471.0, 1491.0, 1511.0] {
            // ITU CWDM centers are x1 nm (1471 etc.); the paper rounds to
            // 1470/1490/1510. The grid must carry all three channels.
            assert!(
                g.channel_of(Wavelength::from_nm(nm)).is_some(),
                "missing CWDM channel at {nm} nm"
            );
        }
    }

    #[test]
    fn channel_lookup_round_trips() {
        let g = Grid::dwdm_100ghz_80ch();
        for (id, w) in g.channels() {
            assert_eq!(g.channel_of(w), Some(id));
            assert_eq!(g.wavelength(id), Some(w));
        }
        assert_eq!(g.wavelength(ChannelId(80)), None);
    }

    #[test]
    fn band_classification() {
        assert_eq!(Band::of(Wavelength::from_nm(1310.0)), Some(Band::O));
        assert_eq!(Band::of(Wavelength::from_nm(1552.5)), Some(Band::C));
        assert_eq!(Band::of(Wavelength::from_nm(1471.0)), Some(Band::S));
        assert_eq!(Band::of(Wavelength::from_nm(1611.0)), Some(Band::L));
        assert_eq!(Band::of(Wavelength::from_nm(700.0)), None);
    }
}
